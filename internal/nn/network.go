package nn

import (
	"fmt"
	"strings"

	"repro/internal/matrix"
)

// Network is a chain computation graph of layers. Forward traverses the
// chain front-to-back (inference); TrainBatch adds a loss evaluation and a
// back-to-front gradient pass (reverse-mode automatic differentiation, §2).
type Network struct {
	layers []Layer

	// params and grads cache the per-layer parameter and gradient
	// matrices in layer order. The layer set is fixed at construction, so
	// building these once removes every per-iteration slice allocation
	// from the training step (TrainBatch and ZeroGrads are 0 allocs/op).
	params []*Mat
	grads  []*Mat
}

// NewNetwork builds a chain network. Adjacent layer dimensions are checked
// where both sides declare them (activations are dimension-polymorphic).
func NewNetwork(layers ...Layer) *Network {
	if len(layers) == 0 {
		panic("nn: empty network")
	}
	prevOut := 0
	for i, l := range layers {
		if in := l.InDim(); in != 0 && prevOut != 0 && in != prevOut {
			panic(fmt.Sprintf("nn: layer %d (%s) expects %d inputs, previous produces %d",
				i, l.Name(), in, prevOut))
		}
		if out := l.OutDim(); out != 0 {
			prevOut = out
		}
	}
	n := &Network{layers: layers}
	for _, l := range layers {
		n.params = append(n.params, l.Params()...)
		n.grads = append(n.grads, l.Grads()...)
	}
	return n
}

// Clone returns an independent deep copy of the network: parameters are
// copied, gradient and activation scratch is fresh. Forward and Backward
// mutate layer-owned buffers, so a Network must not be shared across
// goroutines — the parallel experiment harness gives each worker a clone
// instead.
func (n *Network) Clone() *Network {
	layers := make([]Layer, len(n.layers))
	for i, l := range n.layers {
		layers[i] = cloneLayer(l)
	}
	return NewNetwork(layers...)
}

func cloneLayer(l Layer) Layer {
	switch t := l.(type) {
	case *Linear:
		c := &Linear{
			in: t.in, out: t.out,
			w:  t.w.Clone(),
			b:  t.b.Clone(),
			dw: matrix.New[float64](t.in, t.out),
			db: matrix.New[float64](1, t.out),
		}
		return c
	case *activation:
		return &activation{name: t.name, fn: t.fn, dfn: t.dfn}
	case *Softmax:
		return NewSoftmax()
	default:
		panic(fmt.Sprintf("nn: cannot clone layer %q", l.Name()))
	}
}

// Layers returns the network's layers in order.
func (n *Network) Layers() []Layer { return n.layers }

// InDim returns the input feature dimension (from the first sizing layer).
func (n *Network) InDim() int {
	for _, l := range n.layers {
		if d := l.InDim(); d != 0 {
			return d
		}
	}
	return 0
}

// OutDim returns the output dimension (from the last sizing layer).
func (n *Network) OutDim() int {
	for i := len(n.layers) - 1; i >= 0; i-- {
		if d := n.layers[i].OutDim(); d != 0 {
			return d
		}
	}
	return 0
}

// Forward runs inference on a batch (rows = samples) and returns the final
// layer output. The result aliases layer-owned buffers: it is valid until
// the next Forward call.
func (n *Network) Forward(in *Mat) *Mat {
	cur := in
	for _, l := range n.layers {
		cur = l.Forward(cur)
	}
	return cur
}

// Backward propagates ∂L/∂output back through the chain, accumulating
// parameter gradients. It must follow a Forward on the same batch.
func (n *Network) Backward(dOut *Mat) {
	cur := dOut
	for i := len(n.layers) - 1; i >= 0; i-- {
		cur = n.layers[i].Backward(cur)
	}
}

// ZeroGrads clears all accumulated parameter gradients.
func (n *Network) ZeroGrads() {
	for _, g := range n.grads {
		g.Zero()
	}
}

// Params returns all trainable parameters in layer order. The slice is
// cached at construction and must not be mutated by callers.
func (n *Network) Params() []*Mat { return n.params }

// Grads returns all gradient accumulators in layer order. The slice is
// cached at construction and must not be mutated by callers.
func (n *Network) Grads() []*Mat { return n.grads }

// TrainBatch runs one training iteration (forward, loss, backward,
// optimizer step) on a batch and returns the loss. This is the "one
// training iteration" the paper measures at 51 µs for the readahead model.
func (n *Network) TrainBatch(in *Mat, target Target, loss Loss, opt *SGD) float64 {
	n.ZeroGrads()
	out := n.Forward(in)
	lv := loss.Forward(out, target)
	n.Backward(loss.Backward())
	opt.Step(n.params, n.grads)
	return lv
}

// Predict runs single-sample inference and returns the argmax class.
// The features slice is copied into a reused 1×d buffer, so Predict does
// not allocate after the first call.
func (n *Network) Predict(features []float64, buf *PredictBuffer) int {
	out := n.PredictLogits(features, buf)
	return out.ArgMaxRow(0)
}

// PredictLogits runs single-sample inference and returns the output row
// (logits for classifiers). The result aliases network buffers.
func (n *Network) PredictLogits(features []float64, buf *PredictBuffer) *Mat {
	if buf.in == nil || buf.in.Cols() != len(features) {
		buf.in = matrix.New[float64](1, len(features))
	}
	copy(buf.in.Row(0), features)
	return n.Forward(buf.in)
}

// PredictBatch classifies rows samples in one batched Forward pass:
// features holds rows×InDim values row-major, and the predicted class of
// sample r is written to classes[r]. The input batch lives in buf and the
// layer scratch is capacity-sized, so once buffers have grown to the
// high-water batch size, calls with any rows up to that size are
// allocation-free — the property the serving loop's alloc gate pins.
func (n *Network) PredictBatch(features []float64, rows int, classes []int, buf *PredictBuffer) {
	d := n.InDim()
	if rows <= 0 || len(features) != rows*d {
		panic("nn: PredictBatch feature length mismatch")
	}
	if len(classes) < rows {
		panic("nn: PredictBatch classes slice too short")
	}
	if buf.batch == nil || buf.batch.Cols() != d || buf.batch.Rows() < rows {
		buf.batch = matrix.New[float64](rows, d)
	}
	buf.view = buf.batch.SliceRows(rows)
	copy(buf.view.Data(), features)
	out := n.Forward(&buf.view)
	for r := 0; r < rows; r++ {
		classes[r] = out.ArgMaxRow(r)
	}
}

// PredictBuffer holds the single-sample input buffer for Predict, so
// callers control the allocation (the paper's 676 B inference scratch).
// PredictBatch keeps its capacity-sized batch input here as well; the
// view field re-slices it per call without allocating.
type PredictBuffer struct {
	in    *Mat
	batch *Mat
	view  Mat
}

// InferenceScratchBytes returns the bytes of reusable buffers that
// single-sample inference touches beyond the parameters — the analogue of
// the paper's "676 bytes of memory while inferencing".
func (n *Network) InferenceScratchBytes() int64 {
	cur := n.InDim()
	total := int64(cur) * 8 // the PredictBuffer input row
	for _, l := range n.layers {
		switch t := l.(type) {
		case *Linear:
			cur = t.out
			total += int64(cur) * 8
		case *activation, *Softmax:
			total += int64(cur) * 8
		}
	}
	return total
}

// ParamCount returns the total number of trainable scalars.
func (n *Network) ParamCount() int {
	total := 0
	for _, p := range n.Params() {
		total += p.Rows() * p.Cols()
	}
	return total
}

// ParamBytes returns the bytes held by trainable parameters (float64),
// the dominant term in the paper's "3,916 bytes of dynamic memory" figure.
func (n *Network) ParamBytes() int64 { return int64(n.ParamCount()) * 8 }

// String summarizes the architecture, e.g. "linear(5→16) → sigmoid → ...".
func (n *Network) String() string {
	var b strings.Builder
	for i, l := range n.layers {
		if i > 0 {
			b.WriteString(" → ")
		}
		if l.InDim() != 0 || l.OutDim() != 0 {
			fmt.Fprintf(&b, "%s(%d→%d)", l.Name(), l.InDim(), l.OutDim())
		} else {
			b.WriteString(l.Name())
		}
	}
	return b.String()
}

// SGD is stochastic gradient descent with classical momentum, the optimizer
// the paper trains with (lr = 0.01, momentum = 0.99, §4).
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64

	velocity []*Mat
}

// NewSGD returns an SGD optimizer with the given learning rate and momentum.
func NewSGD(lr, momentum float64) *SGD {
	if lr <= 0 {
		panic("nn: learning rate must be positive")
	}
	if momentum < 0 || momentum >= 1 {
		panic("nn: momentum must be in [0, 1)")
	}
	return &SGD{LR: lr, Momentum: momentum}
}

// Step applies one update: v ← μ·v − lr·(g + wd·p); p ← p + v.
// Velocity buffers are allocated on first use and keyed by position, so a
// single SGD instance must always be used with the same parameter list.
func (s *SGD) Step(params, grads []*Mat) {
	if len(params) != len(grads) {
		panic("nn: params/grads length mismatch")
	}
	if s.velocity == nil {
		s.velocity = make([]*Mat, len(params))
		for i, p := range params {
			s.velocity[i] = matrix.New[float64](p.Rows(), p.Cols())
		}
	}
	if len(s.velocity) != len(params) {
		panic("nn: SGD reused with a different parameter list")
	}
	for i, p := range params {
		g := grads[i]
		v := s.velocity[i]
		pd, gd, vd := p.Data(), g.Data(), v.Data()
		for j := range pd {
			gj := gd[j]
			if s.WeightDecay != 0 {
				gj += s.WeightDecay * pd[j]
			}
			vd[j] = s.Momentum*vd[j] - s.LR*gj
			pd[j] += vd[j]
		}
	}
}
