package nn

import (
	"fmt"

	"repro/internal/fixed"
	"repro/internal/matrix"
)

// FixedNetwork is a network compiled to Q16.16 fixed-point arithmetic for
// inference in FPU-less contexts (§3.1: "Another way to perform FP
// operations in a kernel is to use a fixed-point representation"). It is
// inference-only: training always happens in floating point, then the model
// is quantized — the same train-in-user-space / deploy-in-kernel split the
// paper's readahead model uses.
type fixedOp struct {
	kind uint8
	w    *matrix.Fixed // linear only
	b    *matrix.Fixed
	out  *matrix.Fixed // 1×out scratch, single-sample inference
}

// FixedNetwork executes a quantized chain network without floating point.
type FixedNetwork struct {
	ops   []fixedOp
	inDim int
	inBuf *matrix.Fixed
}

// CompileFixed quantizes a trained network to Q16.16. A trailing Softmax is
// compiled to the identity: softmax is strictly monotone per row, so the
// argmax classification decision is unchanged and the exp evaluations are
// saved — a standard integer-inference simplification.
func CompileFixed(n *Network) (*FixedNetwork, error) {
	fn := &FixedNetwork{inDim: n.InDim()}
	for _, l := range n.layers {
		switch t := l.(type) {
		case *Linear:
			op := fixedOp{
				kind: kindLinear,
				w:    matrix.FixedFrom(t.w),
				b:    matrix.FixedFrom(t.b),
				out:  matrix.NewFixed(1, t.out),
			}
			fn.ops = append(fn.ops, op)
		case *Softmax:
			// Identity under argmax; skip.
		case *activation:
			var kind uint8
			switch t.name {
			case "sigmoid":
				kind = kindSigmoid
			case "relu":
				kind = kindReLU
			case "tanh":
				kind = kindTanh
			default:
				return nil, fmt.Errorf("nn: cannot compile activation %q to fixed point", t.name)
			}
			fn.ops = append(fn.ops, fixedOp{kind: kind})
		default:
			return nil, fmt.Errorf("nn: cannot compile layer %q to fixed point", l.Name())
		}
	}
	if len(fn.ops) == 0 {
		return nil, fmt.Errorf("nn: nothing to compile")
	}
	fn.inBuf = matrix.NewFixed(1, fn.inDim)
	return fn, nil
}

// InDim returns the input feature dimension.
func (fn *FixedNetwork) InDim() int { return fn.inDim }

// PredictQ runs single-sample inference on pre-quantized features and
// returns the argmax output index. It performs no allocation and no
// floating-point arithmetic.
func (fn *FixedNetwork) PredictQ(features []fixed.Q16) int {
	out := fn.forwardQ(features)
	return out.ArgMaxRow(0)
}

// Predict quantizes float features and returns the argmax output index.
func (fn *FixedNetwork) Predict(features []float64) int {
	buf := fn.inBuf.Row(0)
	if len(features) != len(buf) {
		panic(fmt.Sprintf("nn: fixed predict got %d features, want %d", len(features), len(buf)))
	}
	for i, f := range features {
		buf[i] = fixed.FromFloat(f)
	}
	return fn.PredictQ(buf)
}

// Logits runs single-sample inference and returns the output row (aliasing
// internal scratch, valid until the next call).
func (fn *FixedNetwork) Logits(features []fixed.Q16) []fixed.Q16 {
	return fn.forwardQ(features).Row(0)
}

func (fn *FixedNetwork) forwardQ(features []fixed.Q16) *matrix.Fixed {
	if len(features) != fn.inDim {
		panic(fmt.Sprintf("nn: fixed forward got %d features, want %d", len(features), fn.inDim))
	}
	copy(fn.inBuf.Row(0), features)
	cur := fn.inBuf
	for i := range fn.ops {
		op := &fn.ops[i]
		switch op.kind {
		case kindLinear:
			matrix.MulFixedInto(op.out, cur, op.w)
			op.out.AddRowVec(op.b)
			cur = op.out
		case kindSigmoid:
			cur.Apply(fixed.Q16.Sigmoid)
		case kindReLU:
			cur.Apply(fixed.Q16.ReLU)
		case kindTanh:
			cur.Apply(fixed.Q16.Tanh)
		}
	}
	return cur
}

// ParamBytes returns the bytes held by quantized parameters (int32), for
// comparison against the float model's footprint.
func (fn *FixedNetwork) ParamBytes() int64 {
	var total int64
	for i := range fn.ops {
		op := &fn.ops[i]
		if op.w != nil {
			total += int64(op.w.Rows()*op.w.Cols()+op.b.Cols()) * 4
		}
	}
	return total
}
