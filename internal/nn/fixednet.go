// Fixed-point inference core. This file is the part of the nn package
// that executes in FPU-less (kernel) contexts, so it carries the
// kernelspace contract: integer arithmetic only, no allocation on the
// inference path, no forbidden imports. Quantization, compilation from
// the float network, and batch-scratch allocation live in fixedcompile.go
// on the user-space side.
//
//kml:kernelspace
package nn

import (
	"repro/internal/fixed"
	"repro/internal/matrix"
)

// fixedOp is one compiled layer of a FixedNetwork.
type fixedOp struct {
	kind uint8
	w    *matrix.Fixed // linear only
	b    *matrix.Fixed
	out  *matrix.Fixed // batchCap × out scratch (linear only)
	view matrix.Fixed  // rows-row view of out for the current call
}

// FixedNetwork is a network compiled to Q16.16 fixed-point arithmetic for
// inference in FPU-less contexts (§3.1: "Another way to perform FP
// operations in a kernel is to use a fixed-point representation"). It is
// inference-only: training always happens in floating point, then the model
// is quantized — the same train-in-user-space / deploy-in-kernel split the
// paper's readahead model uses.
type FixedNetwork struct {
	ops      []fixedOp
	inDim    int
	inBuf    *matrix.Fixed // batchCap × inDim input scratch
	inView   matrix.Fixed
	qBuf     []fixed.Q16 // user-space quantization scratch for InferBatch
	batchCap int
}

// InDim returns the input feature dimension.
func (fn *FixedNetwork) InDim() int { return fn.inDim }

// OutDim returns the output dimension (the class count), taken from the
// last linear op's weight columns.
func (fn *FixedNetwork) OutDim() int {
	for i := len(fn.ops) - 1; i >= 0; i-- {
		if fn.ops[i].w != nil {
			return fn.ops[i].w.Cols()
		}
	}
	return 0
}

// PredictQ runs single-sample inference on pre-quantized features and
// returns the argmax output index. It performs no allocation and no
// floating-point arithmetic.
//
//kml:hotpath
func (fn *FixedNetwork) PredictQ(features []fixed.Q16) int {
	if len(features) != fn.inDim {
		panic("nn: fixed forward feature length mismatch")
	}
	fn.inView = fn.inBuf.SliceRows(1)
	copy(fn.inView.Row(0), features)
	out := fn.forwardQ(1)
	return out.ArgMaxRow(0)
}

// Logits runs single-sample inference and returns the output row (aliasing
// internal scratch, valid until the next call).
//
//kml:hotpath
func (fn *FixedNetwork) Logits(features []fixed.Q16) []fixed.Q16 {
	if len(features) != fn.inDim {
		panic("nn: fixed forward feature length mismatch")
	}
	fn.inView = fn.inBuf.SliceRows(1)
	copy(fn.inView.Row(0), features)
	return fn.forwardQ(1).Row(0)
}

// InferBatchQ classifies rows pre-quantized samples (row-major
// rows×InDim) in one batched forward pass, writing the predicted class of
// sample r to classes[r]. The kernelspace side never allocates: rows must
// not exceed the scratch capacity reserved by EnsureBatch (user space),
// or InferBatchQ panics. Fixed-point arithmetic is exact per element, so
// the result for each row is bitwise-identical to a PredictQ call on that
// row alone.
//
//kml:hotpath
func (fn *FixedNetwork) InferBatchQ(features []fixed.Q16, rows int, classes []int) {
	if rows <= 0 || len(features) != rows*fn.inDim {
		panic("nn: InferBatchQ feature length mismatch")
	}
	if len(classes) < rows {
		panic("nn: InferBatchQ classes slice too short")
	}
	if rows > fn.batchCap {
		panic("nn: InferBatchQ rows exceed batch capacity; call EnsureBatch first")
	}
	fn.inView = fn.inBuf.SliceRows(rows)
	copy(fn.inView.Data(), features)
	out := fn.forwardQ(rows)
	for r := 0; r < rows; r++ {
		classes[r] = out.ArgMaxRow(r)
	}
}

// BatchLogits returns the output row for sample r of the most recent
// InferBatchQ call (aliasing internal scratch, valid until the next call).
func (fn *FixedNetwork) BatchLogits(r int) []fixed.Q16 {
	last := 0
	for i := range fn.ops {
		if fn.ops[i].w != nil {
			last = i
		}
	}
	return fn.ops[last].view.Row(r)
}

// forwardQ runs the compiled chain over the first rows rows of the input
// scratch, slicing row views of each linear layer's capacity scratch.
//
//kml:hotpath
func (fn *FixedNetwork) forwardQ(rows int) *matrix.Fixed {
	cur := &fn.inView
	for i := range fn.ops {
		op := &fn.ops[i]
		switch op.kind {
		case kindLinear:
			op.view = op.out.SliceRows(rows)
			matrix.MulFixedInto(&op.view, cur, op.w)
			op.view.AddRowVec(op.b)
			cur = &op.view
		case kindSigmoid:
			cur.Apply(fixed.Q16.Sigmoid)
		case kindReLU:
			cur.Apply(fixed.Q16.ReLU)
		case kindTanh:
			cur.Apply(fixed.Q16.Tanh)
		}
	}
	return cur
}

// ParamBytes returns the bytes held by quantized parameters (int32), for
// comparison against the float model's footprint.
func (fn *FixedNetwork) ParamBytes() int64 {
	var total int64
	for i := range fn.ops {
		op := &fn.ops[i]
		if op.w != nil {
			total += int64(op.w.Rows()*op.w.Cols()+op.b.Cols()) * 4
		}
	}
	return total
}
