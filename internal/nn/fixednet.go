// Fixed-point inference core. This file is the part of the nn package
// that executes in FPU-less (kernel) contexts, so it carries the
// kernelspace contract: integer arithmetic only, no allocation on the
// inference path, no forbidden imports. Quantization and compilation from
// the float network live in fixedcompile.go on the user-space side.
//
//kml:kernelspace
package nn

import (
	"repro/internal/fixed"
	"repro/internal/matrix"
)

// fixedOp is one compiled layer of a FixedNetwork.
type fixedOp struct {
	kind uint8
	w    *matrix.Fixed // linear only
	b    *matrix.Fixed
	out  *matrix.Fixed // 1×out scratch, single-sample inference
}

// FixedNetwork is a network compiled to Q16.16 fixed-point arithmetic for
// inference in FPU-less contexts (§3.1: "Another way to perform FP
// operations in a kernel is to use a fixed-point representation"). It is
// inference-only: training always happens in floating point, then the model
// is quantized — the same train-in-user-space / deploy-in-kernel split the
// paper's readahead model uses.
type FixedNetwork struct {
	ops   []fixedOp
	inDim int
	inBuf *matrix.Fixed
}

// InDim returns the input feature dimension.
func (fn *FixedNetwork) InDim() int { return fn.inDim }

// PredictQ runs single-sample inference on pre-quantized features and
// returns the argmax output index. It performs no allocation and no
// floating-point arithmetic.
//
//kml:hotpath
func (fn *FixedNetwork) PredictQ(features []fixed.Q16) int {
	out := fn.forwardQ(features)
	return out.ArgMaxRow(0)
}

// Logits runs single-sample inference and returns the output row (aliasing
// internal scratch, valid until the next call).
//
//kml:hotpath
func (fn *FixedNetwork) Logits(features []fixed.Q16) []fixed.Q16 {
	return fn.forwardQ(features).Row(0)
}

//kml:hotpath
func (fn *FixedNetwork) forwardQ(features []fixed.Q16) *matrix.Fixed {
	if len(features) != fn.inDim {
		panic("nn: fixed forward feature length mismatch")
	}
	copy(fn.inBuf.Row(0), features)
	cur := fn.inBuf
	for i := range fn.ops {
		op := &fn.ops[i]
		switch op.kind {
		case kindLinear:
			matrix.MulFixedInto(op.out, cur, op.w)
			op.out.AddRowVec(op.b)
			cur = op.out
		case kindSigmoid:
			cur.Apply(fixed.Q16.Sigmoid)
		case kindReLU:
			cur.Apply(fixed.Q16.ReLU)
		case kindTanh:
			cur.Apply(fixed.Q16.Tanh)
		}
	}
	return cur
}

// ParamBytes returns the bytes held by quantized parameters (int32), for
// comparison against the float model's footprint.
func (fn *FixedNetwork) ParamBytes() int64 {
	var total int64
	for i := range fn.ops {
		op := &fn.ops[i]
		if op.w != nil {
			total += int64(op.w.Rows()*op.w.Cols()+op.b.Cols()) * 4
		}
	}
	return total
}
