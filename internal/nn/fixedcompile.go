package nn

import (
	"fmt"

	"repro/internal/fixed"
	"repro/internal/matrix"
)

// CompileFixed quantizes a trained network to Q16.16. A trailing Softmax is
// compiled to the identity: softmax is strictly monotone per row, so the
// argmax classification decision is unchanged and the exp evaluations are
// saved — a standard integer-inference simplification.
func CompileFixed(n *Network) (*FixedNetwork, error) {
	fn := &FixedNetwork{inDim: n.InDim()}
	for _, l := range n.layers {
		switch t := l.(type) {
		case *Linear:
			op := fixedOp{
				kind: kindLinear,
				w:    matrix.FixedFrom(t.w),
				b:    matrix.FixedFrom(t.b),
			}
			fn.ops = append(fn.ops, op)
		case *Softmax:
			// Identity under argmax; skip.
		case *activation:
			var kind uint8
			switch t.name {
			case "sigmoid":
				kind = kindSigmoid
			case "relu":
				kind = kindReLU
			case "tanh":
				kind = kindTanh
			default:
				return nil, fmt.Errorf("nn: cannot compile activation %q to fixed point", t.name)
			}
			fn.ops = append(fn.ops, fixedOp{kind: kind})
		default:
			return nil, fmt.Errorf("nn: cannot compile layer %q to fixed point", l.Name())
		}
	}
	if len(fn.ops) == 0 {
		return nil, fmt.Errorf("nn: nothing to compile")
	}
	fn.EnsureBatch(1)
	return fn, nil
}

// EnsureBatch reserves batch scratch for at least rows samples. It is the
// user-space allocation half of the batched fixed path: the kernelspace
// InferBatchQ never allocates, so capacity must be reserved here before
// batches of that size are inferred.
func (fn *FixedNetwork) EnsureBatch(rows int) {
	if rows <= fn.batchCap {
		return
	}
	fn.inBuf = matrix.NewFixed(rows, fn.inDim)
	fn.qBuf = make([]fixed.Q16, rows*fn.inDim)
	for i := range fn.ops {
		op := &fn.ops[i]
		if op.kind == kindLinear {
			op.out = matrix.NewFixed(rows, op.w.Cols())
		}
	}
	fn.batchCap = rows
}

// Predict quantizes float features and returns the argmax output index.
// It is the user↔kernel boundary of the fixed network: quantizing float
// inputs belongs on the user-space side, so it lives here rather than in
// the kernelspace fixednet.go.
func (fn *FixedNetwork) Predict(features []float64) int {
	if len(features) != fn.inDim {
		panic(fmt.Sprintf("nn: fixed predict got %d features, want %d", len(features), fn.inDim))
	}
	buf := fn.qBuf[:fn.inDim]
	for i, f := range features {
		buf[i] = fixed.FromFloat(f)
	}
	return fn.PredictQ(buf)
}

// InferBatch quantizes rows float64 samples (row-major rows×InDim) and
// classifies them in one batched kernel pass, writing classes[r] for each
// sample. Scratch grows on demand; at steady state the call is
// allocation-free.
func (fn *FixedNetwork) InferBatch(features []float64, rows int, classes []int) {
	if rows <= 0 || len(features) != rows*fn.inDim {
		panic("nn: fixed InferBatch feature length mismatch")
	}
	fn.EnsureBatch(rows)
	buf := fn.qBuf[:rows*fn.inDim]
	for i, f := range features {
		buf[i] = fixed.FromFloat(f)
	}
	fn.InferBatchQ(buf, rows, classes)
}
