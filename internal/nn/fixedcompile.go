package nn

import (
	"fmt"

	"repro/internal/fixed"
	"repro/internal/matrix"
)

// CompileFixed quantizes a trained network to Q16.16. A trailing Softmax is
// compiled to the identity: softmax is strictly monotone per row, so the
// argmax classification decision is unchanged and the exp evaluations are
// saved — a standard integer-inference simplification.
func CompileFixed(n *Network) (*FixedNetwork, error) {
	fn := &FixedNetwork{inDim: n.InDim()}
	for _, l := range n.layers {
		switch t := l.(type) {
		case *Linear:
			op := fixedOp{
				kind: kindLinear,
				w:    matrix.FixedFrom(t.w),
				b:    matrix.FixedFrom(t.b),
				out:  matrix.NewFixed(1, t.out),
			}
			fn.ops = append(fn.ops, op)
		case *Softmax:
			// Identity under argmax; skip.
		case *activation:
			var kind uint8
			switch t.name {
			case "sigmoid":
				kind = kindSigmoid
			case "relu":
				kind = kindReLU
			case "tanh":
				kind = kindTanh
			default:
				return nil, fmt.Errorf("nn: cannot compile activation %q to fixed point", t.name)
			}
			fn.ops = append(fn.ops, fixedOp{kind: kind})
		default:
			return nil, fmt.Errorf("nn: cannot compile layer %q to fixed point", l.Name())
		}
	}
	if len(fn.ops) == 0 {
		return nil, fmt.Errorf("nn: nothing to compile")
	}
	fn.inBuf = matrix.NewFixed(1, fn.inDim)
	return fn, nil
}

// Predict quantizes float features and returns the argmax output index.
// It is the user↔kernel boundary of the fixed network: quantizing float
// inputs belongs on the user-space side, so it lives here rather than in
// the kernelspace fixednet.go.
func (fn *FixedNetwork) Predict(features []float64) int {
	buf := fn.inBuf.Row(0)
	if len(features) != len(buf) {
		panic(fmt.Sprintf("nn: fixed predict got %d features, want %d", len(features), len(buf)))
	}
	for i, f := range features {
		buf[i] = fixed.FromFloat(f)
	}
	return fn.PredictQ(buf)
}
