// Model (de)serialization. Persistence code must never drop an error —
// a silently failed write corrupts the deployed model — so this file is
// under the unchecked-error analyzer.
//
//kml:checkerrors
package nn

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"repro/internal/matrix"
)

// The KML model file format (§3.3: "the user can save the model to a file
// that has a KML-specific file format" and later load it in the kernel
// module). Layout, little-endian:
//
//	magic   [4]byte  "KMLF"
//	version uint16   (1)
//	layers  uint16
//	per layer:
//	  kind  uint8
//	  linear only: in uint32, out uint32, W (in·out float64), b (out float64)
//	crc32   uint32   (IEEE, over everything before it)
const (
	modelMagic   = "KMLF"
	modelVersion = 1
)

// Sanity bounds for deserialized layer shapes: reject corrupt headers
// before allocating buffers sized by them.
const (
	maxLinearDim     = 1 << 16
	maxLinearWeights = 1 << 20
)

// Layer kind tags in the serialized format.
const (
	kindLinear  uint8 = 1
	kindSigmoid uint8 = 2
	kindReLU    uint8 = 3
	kindTanh    uint8 = 4
	kindSoftmax uint8 = 5
)

// ErrBadModel reports a corrupt or incompatible model file.
var ErrBadModel = errors.New("nn: bad model file")

type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p)
	return c.w.Write(p)
}

type crcReader struct {
	r   io.Reader
	crc uint32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	return n, err
}

// Save writes the network in the KML model file format.
func (n *Network) Save(w io.Writer) error {
	cw := &crcWriter{w: w}
	if _, err := cw.Write([]byte(modelMagic)); err != nil {
		return err
	}
	if err := binary.Write(cw, binary.LittleEndian, uint16(modelVersion)); err != nil {
		return err
	}
	if err := binary.Write(cw, binary.LittleEndian, uint16(len(n.layers))); err != nil {
		return err
	}
	for _, l := range n.layers {
		switch t := l.(type) {
		case *Linear:
			if err := binary.Write(cw, binary.LittleEndian, kindLinear); err != nil {
				return err
			}
			if err := binary.Write(cw, binary.LittleEndian, uint32(t.in)); err != nil {
				return err
			}
			if err := binary.Write(cw, binary.LittleEndian, uint32(t.out)); err != nil {
				return err
			}
			if err := writeFloats(cw, t.w.Data()); err != nil {
				return err
			}
			if err := writeFloats(cw, t.b.Data()); err != nil {
				return err
			}
		case *Softmax:
			if err := binary.Write(cw, binary.LittleEndian, kindSoftmax); err != nil {
				return err
			}
		case *activation:
			var kind uint8
			switch t.name {
			case "sigmoid":
				kind = kindSigmoid
			case "relu":
				kind = kindReLU
			case "tanh":
				kind = kindTanh
			default:
				return fmt.Errorf("nn: cannot serialize activation %q", t.name)
			}
			if err := binary.Write(cw, binary.LittleEndian, kind); err != nil {
				return err
			}
		default:
			return fmt.Errorf("nn: cannot serialize layer %q", l.Name())
		}
	}
	return binary.Write(w, binary.LittleEndian, cw.crc)
}

// Load reads a network from the KML model file format.
func Load(r io.Reader) (*Network, error) {
	cr := &crcReader{r: r}
	magic := make([]byte, 4)
	if _, err := io.ReadFull(cr, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadModel, err)
	}
	if string(magic) != modelMagic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadModel, magic)
	}
	var version, count uint16
	if err := binary.Read(cr, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadModel, err)
	}
	if version != modelVersion {
		return nil, fmt.Errorf("%w: version %d", ErrBadModel, version)
	}
	if err := binary.Read(cr, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadModel, err)
	}
	if count == 0 || count > 1024 {
		return nil, fmt.Errorf("%w: layer count %d", ErrBadModel, count)
	}
	layers := make([]Layer, 0, count)
	for i := 0; i < int(count); i++ {
		var kind uint8
		if err := binary.Read(cr, binary.LittleEndian, &kind); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadModel, err)
		}
		switch kind {
		case kindLinear:
			var in, out uint32
			if err := binary.Read(cr, binary.LittleEndian, &in); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadModel, err)
			}
			if err := binary.Read(cr, binary.LittleEndian, &out); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadModel, err)
			}
			// Bound the dimensions before allocating: a corrupt or
			// hostile header claiming huge dims must fail cheaply, not
			// commit gigabytes (readFloats allocates 8·in·out bytes
			// up front). 2^20 weights ≫ any KML model (§3: the paper's
			// readahead network is ~1 KB of parameters).
			if in == 0 || out == 0 || in > maxLinearDim || out > maxLinearDim ||
				uint64(in)*uint64(out) > maxLinearWeights {
				return nil, fmt.Errorf("%w: linear dims %dx%d", ErrBadModel, in, out)
			}
			l := &Linear{
				in: int(in), out: int(out),
				w:  matrix.New[float64](int(in), int(out)),
				b:  matrix.New[float64](1, int(out)),
				dw: matrix.New[float64](int(in), int(out)),
				db: matrix.New[float64](1, int(out)),
			}
			if err := readFloats(cr, l.w.Data()); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadModel, err)
			}
			if err := readFloats(cr, l.b.Data()); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadModel, err)
			}
			layers = append(layers, l)
		case kindSigmoid:
			layers = append(layers, NewSigmoid())
		case kindReLU:
			layers = append(layers, NewReLU())
		case kindTanh:
			layers = append(layers, NewTanh())
		case kindSoftmax:
			layers = append(layers, NewSoftmax())
		default:
			return nil, fmt.Errorf("%w: layer kind %d", ErrBadModel, kind)
		}
	}
	want := cr.crc
	var got uint32
	if err := binary.Read(r, binary.LittleEndian, &got); err != nil {
		return nil, fmt.Errorf("%w: missing checksum: %v", ErrBadModel, err)
	}
	if got != want {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrBadModel)
	}
	return NewNetwork(layers...), nil
}

// SaveFile writes the model to path, creating or truncating it.
func (n *Network) SaveFile(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		// Close errors matter on the write path (buffered data may hit
		// the disk only now); don't let them vanish behind a save error.
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	bw := bufio.NewWriter(f)
	if err := n.Save(bw); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadFile reads a model saved with SaveFile — the "deploy into the kernel
// module" step of the paper's workflow.
func LoadFile(path string) (*Network, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(bufio.NewReader(f))
}

func writeFloats(w io.Writer, fs []float64) error {
	buf := make([]byte, 8*len(fs))
	for i, f := range fs {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(f))
	}
	_, err := w.Write(buf)
	return err
}

func readFloats(r io.Reader, fs []float64) error {
	buf := make([]byte, 8*len(fs))
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	for i := range fs {
		fs[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return nil
}
