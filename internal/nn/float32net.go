package nn

import (
	"fmt"

	"repro/internal/kmath"
	"repro/internal/matrix"
)

// Float32Network is a network compiled to single-precision inference —
// the middle point of the paper's three matrix precisions (§3.1: "KML
// supports integer, floating-point, and double precision matrices").
// Training always happens in float64; compiling to float32 halves the
// deployed model's memory at negligible accuracy cost, and the
// BenchmarkAblation_InferencePrecision harness quantifies the trade
// against the Q16.16 integer path.
type float32Op struct {
	kind uint8
	w    *matrix.Dense[float32]
	b    *matrix.Dense[float32]
	out  *matrix.Dense[float32]
}

// Float32Network executes a single-precision chain network.
type Float32Network struct {
	ops   []float32Op
	inDim int
	inBuf *matrix.Dense[float32]
}

// CompileFloat32 converts a trained network to single-precision inference.
// A trailing Softmax compiles to the identity (monotone under argmax),
// as in CompileFixed.
func CompileFloat32(n *Network) (*Float32Network, error) {
	fn := &Float32Network{inDim: n.InDim()}
	for _, l := range n.layers {
		switch t := l.(type) {
		case *Linear:
			op := float32Op{
				kind: kindLinear,
				w:    toFloat32(t.w),
				b:    toFloat32(t.b),
				out:  matrix.New[float32](1, t.out),
			}
			fn.ops = append(fn.ops, op)
		case *Softmax:
			// Identity under argmax; skip.
		case *activation:
			var kind uint8
			switch t.name {
			case "sigmoid":
				kind = kindSigmoid
			case "relu":
				kind = kindReLU
			case "tanh":
				kind = kindTanh
			default:
				return nil, fmt.Errorf("nn: cannot compile activation %q to float32", t.name)
			}
			fn.ops = append(fn.ops, float32Op{kind: kind})
		default:
			return nil, fmt.Errorf("nn: cannot compile layer %q to float32", l.Name())
		}
	}
	if len(fn.ops) == 0 {
		return nil, fmt.Errorf("nn: nothing to compile")
	}
	fn.inBuf = matrix.New[float32](1, fn.inDim)
	return fn, nil
}

func toFloat32(m *Mat) *matrix.Dense[float32] {
	out := matrix.New[float32](m.Rows(), m.Cols())
	src, dst := m.Data(), out.Data()
	for i, v := range src {
		dst[i] = float32(v)
	}
	return out
}

// InDim returns the input feature dimension.
func (fn *Float32Network) InDim() int { return fn.inDim }

// Predict runs single-sample inference on float64 features and returns
// the argmax output index. It performs no allocation.
func (fn *Float32Network) Predict(features []float64) int {
	buf := fn.inBuf.Row(0)
	if len(features) != len(buf) {
		panic(fmt.Sprintf("nn: float32 predict got %d features, want %d", len(features), len(buf)))
	}
	for i, f := range features {
		buf[i] = float32(f)
	}
	out := fn.forward()
	return out.ArgMaxRow(0)
}

// Logits runs single-sample inference and returns the output row
// (aliasing internal scratch, valid until the next call).
func (fn *Float32Network) Logits(features []float64) []float32 {
	fn.Predict(features) // fills buffers
	return fn.ops[lastSizing(fn.ops)].out.Row(0)
}

func lastSizing(ops []float32Op) int {
	last := 0
	for i := range ops {
		if ops[i].w != nil {
			last = i
		}
	}
	return last
}

func (fn *Float32Network) forward() *matrix.Dense[float32] {
	cur := fn.inBuf
	for i := range fn.ops {
		op := &fn.ops[i]
		switch op.kind {
		case kindLinear:
			matrix.MulInto(op.out, cur, op.w)
			op.out.AddRowVec(op.b)
			cur = op.out
		case kindSigmoid:
			cur.Apply(sigmoid32)
		case kindReLU:
			cur.Apply(func(x float32) float32 {
				if x > 0 {
					return x
				}
				return 0
			})
		case kindTanh:
			cur.Apply(func(x float32) float32 { return float32(kmath.Tanh(float64(x))) })
		}
	}
	return cur
}

func sigmoid32(x float32) float32 { return float32(kmath.Sigmoid(float64(x))) }

// ParamBytes returns the bytes held by single-precision parameters.
func (fn *Float32Network) ParamBytes() int64 {
	var total int64
	for i := range fn.ops {
		op := &fn.ops[i]
		if op.w != nil {
			total += int64(op.w.Rows()*op.w.Cols()+op.b.Cols()) * 4
		}
	}
	return total
}
