package nn

import (
	"fmt"

	"repro/internal/kmath"
	"repro/internal/matrix"
)

// Float32Network is a network compiled to single-precision inference —
// the middle point of the paper's three matrix precisions (§3.1: "KML
// supports integer, floating-point, and double precision matrices").
// Training always happens in float64; compiling to float32 halves the
// deployed model's memory at negligible accuracy cost, and the
// BenchmarkAblation_InferencePrecision harness quantifies the trade
// against the Q16.16 integer path.
//
// The compiled network is batched: every linear layer owns capacity-sized
// scratch that a per-call row view slices into, so Predict is just
// InferBatch at rows = 1 and both paths execute the identical kernel
// (matrix.MulBiasInto + the table-driven activations below). That shared
// kernel is what makes batch-of-N output bitwise-equal to N single-sample
// calls — the per-element accumulation order never depends on the row
// count.
type float32Op struct {
	kind uint8
	w    *matrix.Dense[float32]
	b    *matrix.Dense[float32]
	out  *matrix.Dense[float32] // batchCap × out scratch (linear only)
	view matrix.Dense[float32]  // rows-row view of out for the current call
}

// Float32Network executes a single-precision chain network.
type Float32Network struct {
	ops      []float32Op
	inDim    int
	inBuf    *matrix.Dense[float32] // batchCap × inDim input scratch
	inView   matrix.Dense[float32]
	batchCap int
}

// Sigmoid lookup table. kmath.Sigmoid evaluates a 12-term Taylor series
// per call (~27 ns), which dominates single-sample inference cost: the
// readahead model evaluates 30 sigmoids against ~345 multiply-adds. The
// compiled float32 path instead interpolates a 2048-interval table over
// [-16, 16] built from kmath.Sigmoid at init. Max interpolation error is
// ~3e-6 — below float32 resolution around 0.5 — and outside the range the
// function is flat to 1e-7, so the table clamps to its end values. Both
// Predict and InferBatch use the same table, preserving batch/single
// bitwise equality.
// kernelPad is the spare backing capacity (in elements) given to the
// matrices the fused multiply-bias kernel touches, so the amd64 SSE path
// can run full 16-lane loads and stores past the final row.
const kernelPad = 16

const (
	sigLutSize = 2048
	sigLutMin  = float32(-16)
	sigLutMax  = float32(16)
)

var (
	sigLut      [sigLutSize + 1]float32
	sigLutScale = float32(sigLutSize) / (sigLutMax - sigLutMin)
)

func init() {
	for i := range sigLut {
		x := float64(sigLutMin) + float64(i)*float64(sigLutMax-sigLutMin)/sigLutSize
		sigLut[i] = float32(kmath.Sigmoid(x))
	}
}

// sigmoid32 evaluates the logistic function by linear interpolation into
// the compiled table.
//
//kml:hotpath
func sigmoid32(x float32) float32 {
	if x <= sigLutMin {
		return sigLut[0]
	}
	if x >= sigLutMax {
		return sigLut[sigLutSize]
	}
	p := (x - sigLutMin) * sigLutScale
	i := int(p)
	f := p - float32(i)
	// The range checks above bound i to [0, sigLutSize); the mask is a
	// semantic no-op that lets the compiler drop both bounds checks.
	i &= sigLutSize - 1
	lo := sigLut[i]
	return lo + f*(sigLut[i+1]-lo)
}

// tanh32 uses the identity tanh(x) = 2σ(2x) − 1 over the same table.
//
//kml:hotpath
func tanh32(x float32) float32 {
	return 2*sigmoid32(2*x) - 1
}

// sigmoidRows, reluRows, and tanhRows apply an activation elementwise in
// place. They are named functions (not closures) so the noalloc analyzer
// can see the whole hot path.
//
//kml:hotpath
func sigmoidRows(xs []float32) {
	for i, v := range xs {
		xs[i] = sigmoid32(v)
	}
}

//kml:hotpath
func reluRows(xs []float32) {
	for i, v := range xs {
		if v < 0 {
			xs[i] = 0
		}
	}
}

//kml:hotpath
func tanhRows(xs []float32) {
	for i, v := range xs {
		xs[i] = tanh32(v)
	}
}

// CompileFloat32 converts a trained network to single-precision inference.
// A trailing Softmax compiles to the identity (monotone under argmax),
// as in CompileFixed.
func CompileFloat32(n *Network) (*Float32Network, error) {
	fn := &Float32Network{inDim: n.InDim()}
	for _, l := range n.layers {
		switch t := l.(type) {
		case *Linear:
			fn.ops = append(fn.ops, float32Op{
				kind: kindLinear,
				w:    toFloat32(t.w),
				b:    toFloat32(t.b),
			})
		case *Softmax:
			// Identity under argmax; skip.
		case *activation:
			var kind uint8
			switch t.name {
			case "sigmoid":
				kind = kindSigmoid
			case "relu":
				kind = kindReLU
			case "tanh":
				kind = kindTanh
			default:
				return nil, fmt.Errorf("nn: cannot compile activation %q to float32", t.name)
			}
			fn.ops = append(fn.ops, float32Op{kind: kind})
		default:
			return nil, fmt.Errorf("nn: cannot compile layer %q to float32", l.Name())
		}
	}
	if len(fn.ops) == 0 {
		return nil, fmt.Errorf("nn: nothing to compile")
	}
	fn.EnsureBatch(1)
	return fn, nil
}

// toFloat32 narrows a float64 parameter matrix, allocating kernelPad spare
// elements of backing capacity so MulBias32 can take its vector fast path
// (see matrix.NewPadded).
func toFloat32(m *Mat) *matrix.Dense[float32] {
	out := matrix.NewPadded[float32](m.Rows(), m.Cols(), kernelPad)
	src, dst := m.Data(), out.Data()
	for i, v := range src {
		dst[i] = float32(v)
	}
	return out
}

// InDim returns the input feature dimension.
func (fn *Float32Network) InDim() int { return fn.inDim }

// OutDim returns the output dimension (the class count), taken from the
// last linear op's weight columns.
func (fn *Float32Network) OutDim() int {
	for i := len(fn.ops) - 1; i >= 0; i-- {
		if fn.ops[i].w != nil {
			return fn.ops[i].w.Cols()
		}
	}
	return 0
}

// EnsureBatch grows the network's batch scratch to hold at least rows
// samples. InferBatch grows on demand; calling EnsureBatch up front makes
// the very first batched call allocation-free.
//
// Coldpath: this is the amortized growth branch — it allocates by design
// and runs only when rows exceeds the scratch high-water mark, never at
// steady state (TestBatchInferAllocFree pins that).
//
//kml:coldpath
func (fn *Float32Network) EnsureBatch(rows int) {
	if rows <= fn.batchCap {
		return
	}
	fn.inBuf = matrix.New[float32](rows, fn.inDim)
	for i := range fn.ops {
		op := &fn.ops[i]
		if op.kind == kindLinear {
			op.out = matrix.NewPadded[float32](rows, op.w.Cols(), kernelPad)
		}
	}
	fn.batchCap = rows
}

// Predict runs single-sample inference on float64 features and returns
// the argmax output index. It performs no allocation. It is exactly
// InferBatch at one row: the two paths share the fused kernel, so their
// outputs are bitwise-identical by construction.
func (fn *Float32Network) Predict(features []float64) int {
	if len(features) != fn.inDim {
		panic(fmt.Sprintf("nn: float32 predict got %d features, want %d", len(features), fn.inDim))
	}
	fn.inView = fn.inBuf.SliceRows(1)
	buf := fn.inView.Row(0)
	for i, f := range features {
		buf[i] = float32(f)
	}
	out := fn.forward(1)
	return out.ArgMaxRow(0)
}

// InferBatch classifies rows samples in one fused forward pass over
// preallocated scratch: features holds rows×InDim float64 values in
// row-major order, and the predicted class of sample r is written to
// classes[r]. It allocates only when rows exceeds the scratch high-water
// mark (see EnsureBatch); at steady state it is allocation-free.
//
//kml:hotpath
func (fn *Float32Network) InferBatch(features []float64, rows int, classes []int) {
	if rows <= 0 || len(features) != rows*fn.inDim {
		panic("nn: InferBatch feature length mismatch")
	}
	if len(classes) < rows {
		panic("nn: InferBatch classes slice too short")
	}
	if rows > fn.batchCap {
		fn.EnsureBatch(rows)
	}
	fn.inView = fn.inBuf.SliceRows(rows)
	buf := fn.inView.Data()
	for i, f := range features {
		buf[i] = float32(f)
	}
	out := fn.forward(rows)
	for r := 0; r < rows; r++ {
		classes[r] = out.ArgMaxRow(r)
	}
}

// Logits runs single-sample inference and returns the output row
// (aliasing internal scratch, valid until the next call).
func (fn *Float32Network) Logits(features []float64) []float32 {
	fn.Predict(features) // fills buffers
	return fn.ops[lastSizing(fn.ops)].view.Row(0)
}

// BatchLogits returns the output row for sample r of the most recent
// InferBatch call (aliasing internal scratch, valid until the next call).
func (fn *Float32Network) BatchLogits(r int) []float32 {
	return fn.ops[lastSizing(fn.ops)].view.Row(r)
}

func lastSizing(ops []float32Op) int {
	last := 0
	for i := range ops {
		if ops[i].w != nil {
			last = i
		}
	}
	return last
}

// forward runs the compiled chain over the first rows rows of the input
// scratch. Linear layers slice a row view of their capacity scratch and
// run the fused multiply-bias kernel; activations are applied in place by
// the table-driven routines above.
//
//kml:hotpath
func (fn *Float32Network) forward(rows int) *matrix.Dense[float32] {
	cur := &fn.inView
	for i := range fn.ops {
		op := &fn.ops[i]
		switch op.kind {
		case kindLinear:
			op.view = op.out.SliceRows(rows)
			matrix.MulBias32(&op.view, cur, op.w, op.b)
			cur = &op.view
		case kindSigmoid:
			sigmoidRows(cur.Data())
		case kindReLU:
			reluRows(cur.Data())
		case kindTanh:
			tanhRows(cur.Data())
		}
	}
	return cur
}

// ParamBytes returns the bytes held by single-precision parameters.
func (fn *Float32Network) ParamBytes() int64 {
	var total int64
	for i := range fn.ops {
		op := &fn.ops[i]
		if op.w != nil {
			total += int64(op.w.Rows()*op.w.Cols()+op.b.Cols()) * 4
		}
	}
	return total
}
