// Package nn implements KML's neural-network core: modular layers and loss
// functions with forward/backward passes, chain networks, reverse-mode
// automatic differentiation, an SGD optimizer with momentum, the KML model
// file format used to move models between (simulated) user and kernel
// space, and a fixed-point compiled inference path.
//
// The design mirrors §2 of the paper: each differentiable component
// implements (i) construction/initialization, (ii) forward propagation for
// inference, and (iii) backward propagation for training — the three
// functions the paper says an extension must provide. Networks are chain
// computation graphs ("our current prototype supports only chain
// computation graphs"), traversed front-to-back for inference and
// back-to-front for gradients.
package nn

import (
	"fmt"
	"math/rand"

	"repro/internal/kmath"
	"repro/internal/matrix"
)

// Mat is the matrix type the network trains with (double precision, the
// paper's highest-fidelity mode).
type Mat = matrix.Dense[float64]

// NewMat returns a zeroed rows×cols matrix of the network element type —
// a convenience for callers assembling training batches.
func NewMat(rows, cols int) *Mat { return matrix.New[float64](rows, cols) }

// Layer is one differentiable component of a chain network.
//
// Forward consumes a batch (rows = samples) and returns the layer output;
// the returned matrix is owned by the layer and reused across calls with
// the same batch size. Backward consumes ∂L/∂out and returns ∂L/∂in,
// accumulating parameter gradients internally; it must be called after
// Forward on the same batch.
type Layer interface {
	// Name identifies the layer type in serialized models and String output.
	Name() string
	// InDim and OutDim describe the feature dimensions.
	InDim() int
	OutDim() int
	// Forward computes the layer output for in (batch×InDim).
	Forward(in *Mat) *Mat
	// Backward computes ∂L/∂in from ∂L/∂out and records parameter grads.
	Backward(dOut *Mat) *Mat
	// Params returns the trainable parameter matrices (nil for stateless
	// layers); Grads returns the matching gradient accumulators.
	Params() []*Mat
	Grads() []*Mat
}

// Linear is a fully connected layer: out = in·W + b.
type Linear struct {
	in, out int
	w       *Mat // InDim × OutDim
	b       *Mat // 1 × OutDim
	dw, db  *Mat

	x       *Mat // cached input (aliased, not copied)
	yFull   *Mat // capacity-sized output buffer
	dInFull *Mat // capacity-sized gradient buffer
	yView   Mat  // current-batch view of yFull
	dInView Mat  // current-batch view of dInFull
	dwTmp   *Mat // scratch for the per-batch weight gradient
	dbTmp   *Mat // scratch for the per-batch bias gradient
	cap     int  // batch capacity the full buffers are sized for
}

// NewLinear returns a fully connected layer with Xavier/Glorot-uniform
// initialized weights and zero biases, using rng for reproducibility.
func NewLinear(in, out int, rng *rand.Rand) *Linear {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: invalid Linear dims %dx%d", in, out))
	}
	l := &Linear{
		in: in, out: out,
		w:  matrix.New[float64](in, out),
		b:  matrix.New[float64](1, out),
		dw: matrix.New[float64](in, out),
		db: matrix.New[float64](1, out),
	}
	// Xavier-uniform: U(−√(6/(in+out)), +√(6/(in+out))).
	limit := kmath.Sqrt(6 / float64(in+out))
	data := l.w.Data()
	for i := range data {
		data[i] = (rng.Float64()*2 - 1) * limit
	}
	return l
}

// Name implements Layer.
func (l *Linear) Name() string { return "linear" }

// InDim implements Layer.
func (l *Linear) InDim() int { return l.in }

// OutDim implements Layer.
func (l *Linear) OutDim() int { return l.out }

// Weights returns the weight matrix (InDim × OutDim).
func (l *Linear) Weights() *Mat { return l.w }

// Bias returns the bias row vector (1 × OutDim).
func (l *Linear) Bias() *Mat { return l.b }

// size points the layer's output and gradient views at batch rows of
// capacity-sized scratch, growing the scratch only when batch exceeds the
// high-water mark — batch sizes that vary below it (the serving path)
// never reallocate.
func (l *Linear) size(batch int) {
	if batch > l.cap {
		l.yFull = matrix.New[float64](batch, l.out)
		l.dInFull = matrix.New[float64](batch, l.in)
		if l.dwTmp == nil {
			l.dwTmp = matrix.New[float64](l.in, l.out)
			l.dbTmp = matrix.New[float64](1, l.out)
		}
		l.cap = batch
	}
	l.yView = l.yFull.SliceRows(batch)
	l.dInView = l.dInFull.SliceRows(batch)
}

// Forward implements Layer.
func (l *Linear) Forward(in *Mat) *Mat {
	if in.Cols() != l.in {
		panic(fmt.Sprintf("nn: linear got %d features, want %d", in.Cols(), l.in))
	}
	l.size(in.Rows())
	l.x = in
	matrix.MulInto(&l.yView, in, l.w)
	l.yView.AddRowVec(l.b)
	return &l.yView
}

// Backward implements Layer.
func (l *Linear) Backward(dOut *Mat) *Mat {
	if l.x == nil {
		panic("nn: Backward before Forward")
	}
	// dW += xᵀ·dOut ; accumulate so gradient steps can span micro-batches.
	matrix.TransMulInto(l.dwTmp, l.x, dOut)
	matrix.AddInto(l.dw, l.dw, l.dwTmp)
	// db += column sums of dOut.
	dOut.SumRowsInto(l.dbTmp)
	matrix.AddInto(l.db, l.db, l.dbTmp)
	// dIn = dOut·Wᵀ.
	matrix.MulTransInto(&l.dInView, dOut, l.w)
	return &l.dInView
}

// Params implements Layer.
func (l *Linear) Params() []*Mat { return []*Mat{l.w, l.b} }

// Grads implements Layer.
func (l *Linear) Grads() []*Mat { return []*Mat{l.dw, l.db} }

// activation is shared machinery for stateless elementwise layers.
type activation struct {
	name string
	fn   func(float64) float64
	// dfn computes the local derivative from (input, output).
	dfn func(x, y float64) float64

	x       *Mat
	yFull   *Mat
	dInFull *Mat
	yView   Mat
	dInView Mat
	capRows int
	cols    int
}

func (a *activation) Name() string { return a.name }

// InDim implements Layer; activations are dimension-preserving and
// polymorphic, reported as 0.
func (a *activation) InDim() int { return 0 }

// OutDim implements Layer.
func (a *activation) OutDim() int { return 0 }

func (a *activation) Forward(in *Mat) *Mat {
	if in.Rows() > a.capRows || in.Cols() != a.cols {
		a.yFull = matrix.New[float64](in.Rows(), in.Cols())
		a.dInFull = matrix.New[float64](in.Rows(), in.Cols())
		a.capRows = in.Rows()
		a.cols = in.Cols()
	}
	a.yView = a.yFull.SliceRows(in.Rows())
	a.dInView = a.dInFull.SliceRows(in.Rows())
	a.x = in
	xs, ys := in.Data(), a.yView.Data()
	for i, v := range xs {
		ys[i] = a.fn(v)
	}
	return &a.yView
}

func (a *activation) Backward(dOut *Mat) *Mat {
	if a.x == nil {
		panic("nn: Backward before Forward")
	}
	xs, ys, ds, out := a.x.Data(), a.yView.Data(), a.dInView.Data(), dOut.Data()
	for i := range ds {
		ds[i] = out[i] * a.dfn(xs[i], ys[i])
	}
	return &a.dInView
}

func (a *activation) Params() []*Mat { return nil }
func (a *activation) Grads() []*Mat  { return nil }

// NewSigmoid returns a logistic activation layer — the nonlinearity the
// paper's readahead model uses between its three linear layers.
func NewSigmoid() Layer {
	return &activation{
		name: "sigmoid",
		fn:   kmath.Sigmoid,
		dfn:  func(_, y float64) float64 { return y * (1 - y) },
	}
}

// NewReLU returns a rectified-linear activation layer.
func NewReLU() Layer {
	return &activation{
		name: "relu",
		fn: func(x float64) float64 {
			if x > 0 {
				return x
			}
			return 0
		},
		dfn: func(x, _ float64) float64 {
			if x > 0 {
				return 1
			}
			return 0
		},
	}
}

// NewTanh returns a hyperbolic-tangent activation layer.
func NewTanh() Layer {
	return &activation{
		name: "tanh",
		fn:   kmath.Tanh,
		dfn:  func(_, y float64) float64 { return 1 - y*y },
	}
}

// Softmax is an inference-time output layer turning logits into a
// probability distribution per row. For training, use the fused
// CrossEntropy loss instead (it differentiates through softmax itself),
// so Softmax deliberately has no Backward.
type Softmax struct {
	yFull   *Mat
	yView   Mat
	capRows int
	cols    int
}

// NewSoftmax returns a softmax output layer.
func NewSoftmax() *Softmax { return &Softmax{} }

// Name implements Layer.
func (s *Softmax) Name() string { return "softmax" }

// InDim implements Layer.
func (s *Softmax) InDim() int { return 0 }

// OutDim implements Layer.
func (s *Softmax) OutDim() int { return 0 }

// Forward implements Layer.
func (s *Softmax) Forward(in *Mat) *Mat {
	if in.Rows() > s.capRows || in.Cols() != s.cols {
		s.yFull = matrix.New[float64](in.Rows(), in.Cols())
		s.capRows = in.Rows()
		s.cols = in.Cols()
	}
	s.yView = s.yFull.SliceRows(in.Rows())
	for i := 0; i < in.Rows(); i++ {
		kmath.Softmax(s.yView.Row(i), in.Row(i))
	}
	return &s.yView
}

// Backward implements Layer; softmax is inference-only in KML networks.
func (s *Softmax) Backward(*Mat) *Mat {
	panic("nn: Softmax has no Backward; train with the fused CrossEntropy loss")
}

// Params implements Layer.
func (s *Softmax) Params() []*Mat { return nil }

// Grads implements Layer.
func (s *Softmax) Grads() []*Mat { return nil }
