// Package nn implements KML's neural-network core: modular layers and loss
// functions with forward/backward passes, chain networks, reverse-mode
// automatic differentiation, an SGD optimizer with momentum, the KML model
// file format used to move models between (simulated) user and kernel
// space, and a fixed-point compiled inference path.
//
// The design mirrors §2 of the paper: each differentiable component
// implements (i) construction/initialization, (ii) forward propagation for
// inference, and (iii) backward propagation for training — the three
// functions the paper says an extension must provide. Networks are chain
// computation graphs ("our current prototype supports only chain
// computation graphs"), traversed front-to-back for inference and
// back-to-front for gradients.
package nn

import (
	"fmt"
	"math/rand"

	"repro/internal/kmath"
	"repro/internal/matrix"
)

// Mat is the matrix type the network trains with (double precision, the
// paper's highest-fidelity mode).
type Mat = matrix.Dense[float64]

// NewMat returns a zeroed rows×cols matrix of the network element type —
// a convenience for callers assembling training batches.
func NewMat(rows, cols int) *Mat { return matrix.New[float64](rows, cols) }

// Layer is one differentiable component of a chain network.
//
// Forward consumes a batch (rows = samples) and returns the layer output;
// the returned matrix is owned by the layer and reused across calls with
// the same batch size. Backward consumes ∂L/∂out and returns ∂L/∂in,
// accumulating parameter gradients internally; it must be called after
// Forward on the same batch.
type Layer interface {
	// Name identifies the layer type in serialized models and String output.
	Name() string
	// InDim and OutDim describe the feature dimensions.
	InDim() int
	OutDim() int
	// Forward computes the layer output for in (batch×InDim).
	Forward(in *Mat) *Mat
	// Backward computes ∂L/∂in from ∂L/∂out and records parameter grads.
	Backward(dOut *Mat) *Mat
	// Params returns the trainable parameter matrices (nil for stateless
	// layers); Grads returns the matching gradient accumulators.
	Params() []*Mat
	Grads() []*Mat
}

// Linear is a fully connected layer: out = in·W + b.
type Linear struct {
	in, out int
	w       *Mat // InDim × OutDim
	b       *Mat // 1 × OutDim
	dw, db  *Mat

	x     *Mat // cached input (aliased, not copied)
	y     *Mat // output buffer
	dIn   *Mat // gradient buffer
	dwTmp *Mat // scratch for the per-batch weight gradient
	dbTmp *Mat // scratch for the per-batch bias gradient
	last  int  // batch size the buffers are sized for
}

// NewLinear returns a fully connected layer with Xavier/Glorot-uniform
// initialized weights and zero biases, using rng for reproducibility.
func NewLinear(in, out int, rng *rand.Rand) *Linear {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: invalid Linear dims %dx%d", in, out))
	}
	l := &Linear{
		in: in, out: out,
		w:  matrix.New[float64](in, out),
		b:  matrix.New[float64](1, out),
		dw: matrix.New[float64](in, out),
		db: matrix.New[float64](1, out),
	}
	// Xavier-uniform: U(−√(6/(in+out)), +√(6/(in+out))).
	limit := kmath.Sqrt(6 / float64(in+out))
	data := l.w.Data()
	for i := range data {
		data[i] = (rng.Float64()*2 - 1) * limit
	}
	return l
}

// Name implements Layer.
func (l *Linear) Name() string { return "linear" }

// InDim implements Layer.
func (l *Linear) InDim() int { return l.in }

// OutDim implements Layer.
func (l *Linear) OutDim() int { return l.out }

// Weights returns the weight matrix (InDim × OutDim).
func (l *Linear) Weights() *Mat { return l.w }

// Bias returns the bias row vector (1 × OutDim).
func (l *Linear) Bias() *Mat { return l.b }

func (l *Linear) size(batch int) {
	if l.last == batch {
		return
	}
	l.y = matrix.New[float64](batch, l.out)
	l.dIn = matrix.New[float64](batch, l.in)
	if l.dwTmp == nil {
		l.dwTmp = matrix.New[float64](l.in, l.out)
		l.dbTmp = matrix.New[float64](1, l.out)
	}
	l.last = batch
}

// Forward implements Layer.
func (l *Linear) Forward(in *Mat) *Mat {
	if in.Cols() != l.in {
		panic(fmt.Sprintf("nn: linear got %d features, want %d", in.Cols(), l.in))
	}
	l.size(in.Rows())
	l.x = in
	matrix.MulInto(l.y, in, l.w)
	l.y.AddRowVec(l.b)
	return l.y
}

// Backward implements Layer.
func (l *Linear) Backward(dOut *Mat) *Mat {
	if l.x == nil {
		panic("nn: Backward before Forward")
	}
	// dW += xᵀ·dOut ; accumulate so gradient steps can span micro-batches.
	matrix.TransMulInto(l.dwTmp, l.x, dOut)
	matrix.AddInto(l.dw, l.dw, l.dwTmp)
	// db += column sums of dOut.
	dOut.SumRowsInto(l.dbTmp)
	matrix.AddInto(l.db, l.db, l.dbTmp)
	// dIn = dOut·Wᵀ.
	matrix.MulTransInto(l.dIn, dOut, l.w)
	return l.dIn
}

// Params implements Layer.
func (l *Linear) Params() []*Mat { return []*Mat{l.w, l.b} }

// Grads implements Layer.
func (l *Linear) Grads() []*Mat { return []*Mat{l.dw, l.db} }

// activation is shared machinery for stateless elementwise layers.
type activation struct {
	name string
	fn   func(float64) float64
	// dfn computes the local derivative from (input, output).
	dfn func(x, y float64) float64

	x    *Mat
	y    *Mat
	dIn  *Mat
	last int
}

func (a *activation) Name() string { return a.name }

// InDim implements Layer; activations are dimension-preserving and
// polymorphic, reported as 0.
func (a *activation) InDim() int { return 0 }

// OutDim implements Layer.
func (a *activation) OutDim() int { return 0 }

func (a *activation) Forward(in *Mat) *Mat {
	if a.last != in.Rows()*in.Cols() {
		a.y = matrix.New[float64](in.Rows(), in.Cols())
		a.dIn = matrix.New[float64](in.Rows(), in.Cols())
		a.last = in.Rows() * in.Cols()
	}
	a.x = in
	xs, ys := in.Data(), a.y.Data()
	for i, v := range xs {
		ys[i] = a.fn(v)
	}
	return a.y
}

func (a *activation) Backward(dOut *Mat) *Mat {
	if a.x == nil {
		panic("nn: Backward before Forward")
	}
	xs, ys, ds, out := a.x.Data(), a.y.Data(), a.dIn.Data(), dOut.Data()
	for i := range ds {
		ds[i] = out[i] * a.dfn(xs[i], ys[i])
	}
	return a.dIn
}

func (a *activation) Params() []*Mat { return nil }
func (a *activation) Grads() []*Mat  { return nil }

// NewSigmoid returns a logistic activation layer — the nonlinearity the
// paper's readahead model uses between its three linear layers.
func NewSigmoid() Layer {
	return &activation{
		name: "sigmoid",
		fn:   kmath.Sigmoid,
		dfn:  func(_, y float64) float64 { return y * (1 - y) },
	}
}

// NewReLU returns a rectified-linear activation layer.
func NewReLU() Layer {
	return &activation{
		name: "relu",
		fn: func(x float64) float64 {
			if x > 0 {
				return x
			}
			return 0
		},
		dfn: func(x, _ float64) float64 {
			if x > 0 {
				return 1
			}
			return 0
		},
	}
}

// NewTanh returns a hyperbolic-tangent activation layer.
func NewTanh() Layer {
	return &activation{
		name: "tanh",
		fn:   kmath.Tanh,
		dfn:  func(_, y float64) float64 { return 1 - y*y },
	}
}

// Softmax is an inference-time output layer turning logits into a
// probability distribution per row. For training, use the fused
// CrossEntropy loss instead (it differentiates through softmax itself),
// so Softmax deliberately has no Backward.
type Softmax struct {
	y    *Mat
	last int
}

// NewSoftmax returns a softmax output layer.
func NewSoftmax() *Softmax { return &Softmax{} }

// Name implements Layer.
func (s *Softmax) Name() string { return "softmax" }

// InDim implements Layer.
func (s *Softmax) InDim() int { return 0 }

// OutDim implements Layer.
func (s *Softmax) OutDim() int { return 0 }

// Forward implements Layer.
func (s *Softmax) Forward(in *Mat) *Mat {
	if s.last != in.Rows()*in.Cols() {
		s.y = matrix.New[float64](in.Rows(), in.Cols())
		s.last = in.Rows() * in.Cols()
	}
	for i := 0; i < in.Rows(); i++ {
		kmath.Softmax(s.y.Row(i), in.Row(i))
	}
	return s.y
}

// Backward implements Layer; softmax is inference-only in KML networks.
func (s *Softmax) Backward(*Mat) *Mat {
	panic("nn: Softmax has no Backward; train with the fused CrossEntropy loss")
}

// Params implements Layer.
func (s *Softmax) Params() []*Mat { return nil }

// Grads implements Layer.
func (s *Softmax) Grads() []*Mat { return nil }
