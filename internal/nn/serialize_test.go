package nn

import (
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/matrix"
)

func testNet(seed int64) *Network {
	rng := rand.New(rand.NewSource(seed))
	return NewNetwork(
		NewLinear(5, 15, rng), NewSigmoid(),
		NewLinear(15, 15, rng), NewSigmoid(),
		NewLinear(15, 4, rng), NewSoftmax(),
	)
}

func TestSaveLoadRoundTrip(t *testing.T) {
	net := testNet(1)
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.String() != net.String() {
		t.Fatalf("architecture mismatch: %q vs %q", loaded.String(), net.String())
	}
	// Identical outputs on a probe batch.
	in := matrix.FromSlice(2, 5, []float64{1, -1, 0.5, 2, -0.3, 0, 0, 1, 1, 0})
	a, b := net.Forward(in), loaded.Forward(in)
	if !a.Equal(b, 0) {
		t.Error("loaded model output differs")
	}
}

func TestSaveLoadFile(t *testing.T) {
	net := testNet(2)
	path := filepath.Join(t.TempDir(), "model.kml")
	if err := net.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	in := matrix.New[float64](1, 5)
	if !net.Forward(in).Equal(loaded.Forward(in), 0) {
		t.Error("file round trip mismatch")
	}
}

func TestLoadRejectsBadMagic(t *testing.T) {
	_, err := Load(bytes.NewReader([]byte("NOPE....")))
	if !errors.Is(err, ErrBadModel) {
		t.Errorf("want ErrBadModel, got %v", err)
	}
}

func TestLoadRejectsTruncation(t *testing.T) {
	net := testNet(3)
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{3, 7, 10, len(full) / 2, len(full) - 2} {
		if _, err := Load(bytes.NewReader(full[:cut])); !errors.Is(err, ErrBadModel) {
			t.Errorf("truncation at %d: want ErrBadModel, got %v", cut, err)
		}
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	net := testNet(4)
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)/2] ^= 0xFF // flip a weight byte
	if _, err := Load(bytes.NewReader(data)); !errors.Is(err, ErrBadModel) {
		t.Errorf("corruption: want ErrBadModel (checksum), got %v", err)
	}
}

func TestLoadRejectsBadVersion(t *testing.T) {
	net := testNet(5)
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = 99 // version low byte
	if _, err := Load(bytes.NewReader(data)); !errors.Is(err, ErrBadModel) {
		t.Errorf("bad version: want ErrBadModel, got %v", err)
	}
}

func TestLoadedModelIsTrainable(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	net := NewNetwork(NewLinear(2, 8, rng), NewTanh(), NewLinear(8, 2, rng))
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	in := matrix.FromSlice(4, 2, []float64{0, 0, 0, 1, 1, 0, 1, 1})
	labels := []int{0, 1, 1, 0}
	loss := NewCrossEntropy()
	opt := NewSGD(0.5, 0.9)
	var lv float64
	for i := 0; i < 2000; i++ {
		lv = loaded.TrainBatch(in, ClassTarget(labels), loss, opt)
	}
	if lv > 0.05 {
		t.Errorf("loaded model failed to train: loss %g", lv)
	}
}

func TestCompileFixedMatchesFloatArgmax(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Train a small real model first so weights are meaningful.
	net := NewNetwork(NewLinear(2, 8, rng), NewSigmoid(), NewLinear(8, 3, rng))
	trainX, trainY := blobs(rng, 200)
	loss := NewCrossEntropy()
	opt := NewSGD(0.1, 0.9)
	for i := 0; i < 300; i++ {
		net.TrainBatch(trainX, ClassTarget(trainY), loss, opt)
	}
	fnet, err := CompileFixed(net)
	if err != nil {
		t.Fatal(err)
	}
	testX, _ := blobs(rng, 300)
	var buf PredictBuffer
	agree := 0
	for i := 0; i < testX.Rows(); i++ {
		f := testX.Row(i)
		if net.Predict(f, &buf) == fnet.Predict(f) {
			agree++
		}
	}
	if frac := float64(agree) / float64(testX.Rows()); frac < 0.97 {
		t.Errorf("fixed-point agreement %.3f < 0.97", frac)
	}
}

func TestCompileFixedSkipsSoftmax(t *testing.T) {
	net := testNet(8)
	fnet, err := CompileFixed(net)
	if err != nil {
		t.Fatal(err)
	}
	var buf PredictBuffer
	features := []float64{0.1, 0.2, -0.3, 0.4, 0.5}
	// Softmax preserves argmax, so the fixed net (which skips it) must agree.
	if net.Predict(features, &buf) != fnet.Predict(features) {
		t.Error("softmax-skipping fixed net disagrees on argmax")
	}
}

func TestFixedPredictNoFloatNoAlloc(t *testing.T) {
	net := testNet(9)
	fnet, err := CompileFixed(net)
	if err != nil {
		t.Fatal(err)
	}
	features := []float64{0.1, 0.2, -0.3, 0.4, 0.5}
	fnet.Predict(features)
	allocs := testing.AllocsPerRun(100, func() { fnet.Predict(features) })
	if allocs != 0 {
		t.Errorf("fixed inference allocates %.1f objects per run", allocs)
	}
}

func TestFixedParamBytes(t *testing.T) {
	net := testNet(10)
	fnet, err := CompileFixed(net)
	if err != nil {
		t.Fatal(err)
	}
	// int32 params = half the float64 bytes.
	if fnet.ParamBytes()*2 != net.ParamBytes() {
		t.Errorf("fixed %dB vs float %dB", fnet.ParamBytes(), net.ParamBytes())
	}
}

func BenchmarkFixedInference(b *testing.B) {
	net := testNet(11)
	fnet, err := CompileFixed(net)
	if err != nil {
		b.Fatal(err)
	}
	features := []float64{0.5, -1.2, 0.3, 2.2, -0.7}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fnet.Predict(features)
	}
}
