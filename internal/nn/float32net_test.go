package nn

import (
	"math/rand"
	"testing"
)

func TestCompileFloat32MatchesFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	net := NewNetwork(NewLinear(2, 8, rng), NewSigmoid(), NewLinear(8, 3, rng))
	trainX, trainY := blobs(rng, 200)
	loss := NewCrossEntropy()
	opt := NewSGD(0.1, 0.9)
	for i := 0; i < 300; i++ {
		net.TrainBatch(trainX, ClassTarget(trainY), loss, opt)
	}
	f32, err := CompileFloat32(net)
	if err != nil {
		t.Fatal(err)
	}
	if f32.InDim() != 2 {
		t.Error("InDim")
	}
	testX, _ := blobs(rng, 500)
	var buf PredictBuffer
	agree := 0
	for i := 0; i < testX.Rows(); i++ {
		if net.Predict(testX.Row(i), &buf) == f32.Predict(testX.Row(i)) {
			agree++
		}
	}
	// float32 rounding can flip only near-tie predictions.
	if frac := float64(agree) / float64(testX.Rows()); frac < 0.99 {
		t.Errorf("float32 agreement %.3f", frac)
	}
}

func TestCompileFloat32Softmax(t *testing.T) {
	net := testNet(30) // includes a trailing Softmax
	f32, err := CompileFloat32(net)
	if err != nil {
		t.Fatal(err)
	}
	var buf PredictBuffer
	in := []float64{0.3, -0.2, 0.1, 0.7, -0.4}
	if net.Predict(in, &buf) != f32.Predict(in) {
		t.Error("softmax-skipping float32 net disagrees on argmax")
	}
}

func TestFloat32HalvesParamBytes(t *testing.T) {
	net := testNet(31)
	f32, err := CompileFloat32(net)
	if err != nil {
		t.Fatal(err)
	}
	if f32.ParamBytes()*2 != net.ParamBytes() {
		t.Errorf("float32 %dB vs float64 %dB", f32.ParamBytes(), net.ParamBytes())
	}
}

func TestFloat32NoAlloc(t *testing.T) {
	net := testNet(32)
	f32, err := CompileFloat32(net)
	if err != nil {
		t.Fatal(err)
	}
	in := []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	f32.Predict(in)
	if allocs := testing.AllocsPerRun(100, func() { f32.Predict(in) }); allocs != 0 {
		t.Errorf("float32 inference allocates %.1f/run", allocs)
	}
}

func TestFloat32Logits(t *testing.T) {
	net := testNet(33)
	f32, err := CompileFloat32(net)
	if err != nil {
		t.Fatal(err)
	}
	in := []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	logits := f32.Logits(in)
	if len(logits) != 4 {
		t.Fatalf("logits len %d", len(logits))
	}
	best, bestV := 0, logits[0]
	for i, v := range logits {
		if v > bestV {
			best, bestV = i, v
		}
	}
	if best != f32.Predict(in) {
		t.Error("Predict must be argmax of Logits")
	}
}

func TestFloat32WrongDimPanics(t *testing.T) {
	net := testNet(34)
	f32, err := CompileFloat32(net)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("wrong feature count must panic")
		}
	}()
	f32.Predict([]float64{1})
}

func BenchmarkFloat32Inference(b *testing.B) {
	net := testNet(35)
	f32, err := CompileFloat32(net)
	if err != nil {
		b.Fatal(err)
	}
	in := []float64{0.5, -1.2, 0.3, 2.2, -0.7}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f32.Predict(in)
	}
}
