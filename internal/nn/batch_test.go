package nn

import (
	"math/rand"
	"testing"

	"repro/internal/fixed"
	"repro/internal/matrix"
)

// randFeatures returns rows×inDim features in [-2, 2).
func randFeatures(rng *rand.Rand, rows, inDim int) []float64 {
	feats := make([]float64, rows*inDim)
	for i := range feats {
		feats[i] = rng.Float64()*4 - 2
	}
	return feats
}

// TestInferBatchMatchesPredictF32 checks the satellite equivalence claim
// for the float32 path: a batch of N samples must produce logits
// bitwise-identical to N single-sample calls, for every batch size.
func TestInferBatchMatchesPredictF32(t *testing.T) {
	net := testNet(40)
	f32, err := CompileFloat32(net)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	for _, rows := range []int{1, 2, 3, 7, 16, 64, 129} {
		feats := randFeatures(rng, rows, f32.InDim())
		classes := make([]int, rows)
		f32.InferBatch(feats, rows, classes)
		batchLogits := make([][]float32, rows)
		for r := 0; r < rows; r++ {
			batchLogits[r] = append([]float32(nil), f32.BatchLogits(r)...)
		}
		for r := 0; r < rows; r++ {
			sample := feats[r*f32.InDim() : (r+1)*f32.InDim()]
			if got := f32.Predict(sample); got != classes[r] {
				t.Fatalf("rows=%d sample %d: batch class %d, single class %d", rows, r, classes[r], got)
			}
			single := f32.Logits(sample)
			for j, v := range single {
				if batchLogits[r][j] != v {
					t.Fatalf("rows=%d sample %d logit %d: batch %v != single %v (not bitwise equal)",
						rows, r, j, batchLogits[r][j], v)
				}
			}
		}
	}
}

// TestInferBatchMatchesPredictFixed checks the same claim for the Q16.16
// path, where integer arithmetic makes equality exact by construction.
func TestInferBatchMatchesPredictFixed(t *testing.T) {
	net := testNet(42)
	fx, err := CompileFixed(net)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(43))
	for _, rows := range []int{1, 5, 32, 64} {
		feats := randFeatures(rng, rows, fx.InDim())
		classes := make([]int, rows)
		fx.InferBatch(feats, rows, classes)
		batchLogits := make([][]fixed.Q16, rows)
		for r := 0; r < rows; r++ {
			batchLogits[r] = append([]fixed.Q16(nil), fx.BatchLogits(r)...)
		}
		q := make([]fixed.Q16, fx.InDim())
		for r := 0; r < rows; r++ {
			sample := feats[r*fx.InDim() : (r+1)*fx.InDim()]
			if got := fx.Predict(sample); got != classes[r] {
				t.Fatalf("rows=%d sample %d: batch class %d, single class %d", rows, r, classes[r], got)
			}
			for i, f := range sample {
				q[i] = fixed.FromFloat(f)
			}
			for j, v := range fx.Logits(q) {
				if batchLogits[r][j] != v {
					t.Fatalf("rows=%d sample %d logit %d: batch %v != single %v", rows, r, j, batchLogits[r][j], v)
				}
			}
		}
	}
}

// TestInferBatchQPanicsOverCapacity pins the kernelspace contract: the
// integer batch path never allocates, so exceeding the reserved scratch is
// a caller bug and must panic rather than silently grow.
func TestInferBatchQPanicsOverCapacity(t *testing.T) {
	net := testNet(44)
	fx, err := CompileFixed(net)
	if err != nil {
		t.Fatal(err)
	}
	fx.EnsureBatch(4)
	feats := make([]fixed.Q16, 8*fx.InDim())
	classes := make([]int, 8)
	defer func() {
		if recover() == nil {
			t.Error("InferBatchQ beyond EnsureBatch capacity must panic")
		}
	}()
	fx.InferBatchQ(feats, 8, classes)
}

// TestPredictBatchMatchesPredict checks the float64 training-network batch
// path used by the parallel evaluation harness.
func TestPredictBatchMatchesPredict(t *testing.T) {
	net := testNet(45)
	rng := rand.New(rand.NewSource(46))
	var single PredictBuffer
	var batch PredictBuffer
	for _, rows := range []int{1, 3, 17, 64} {
		feats := randFeatures(rng, rows, net.InDim())
		classes := make([]int, rows)
		net.PredictBatch(feats, rows, classes, &batch)
		for r := 0; r < rows; r++ {
			sample := feats[r*net.InDim() : (r+1)*net.InDim()]
			if got := net.Predict(sample, &single); got != classes[r] {
				t.Fatalf("rows=%d sample %d: batch class %d, single class %d", rows, r, classes[r], got)
			}
		}
	}
}

// TestInferBatchAllocFree is the satellite alloc gate for inference: at
// steady state (batch capacity reached) every batched path must be
// allocation-free, including when the batch size varies below the
// high-water mark.
func TestInferBatchAllocFree(t *testing.T) {
	net := testNet(47)
	f32, err := CompileFloat32(net)
	if err != nil {
		t.Fatal(err)
	}
	fx, err := CompileFixed(net)
	if err != nil {
		t.Fatal(err)
	}
	const maxRows = 64
	rng := rand.New(rand.NewSource(48))
	feats := randFeatures(rng, maxRows, net.InDim())
	classes := make([]int, maxRows)
	f32.EnsureBatch(maxRows)
	fx.EnsureBatch(maxRows)
	var buf PredictBuffer
	net.PredictBatch(feats, maxRows, classes, &buf)
	for _, rows := range []int{maxRows, 17, 1} {
		rows := rows
		if a := testing.AllocsPerRun(100, func() { f32.InferBatch(feats[:rows*net.InDim()], rows, classes) }); a != 0 {
			t.Errorf("float32 InferBatch rows=%d allocates %.1f/run", rows, a)
		}
		if a := testing.AllocsPerRun(100, func() { fx.InferBatch(feats[:rows*net.InDim()], rows, classes) }); a != 0 {
			t.Errorf("fixed InferBatch rows=%d allocates %.1f/run", rows, a)
		}
		if a := testing.AllocsPerRun(100, func() { net.PredictBatch(feats[:rows*net.InDim()], rows, classes, &buf) }); a != 0 {
			t.Errorf("float64 PredictBatch rows=%d allocates %.1f/run", rows, a)
		}
	}
}

// TestTrainingStepAllocFree is the satellite alloc gate for training: after
// the first step sizes the layer scratch, a full forward/backward/update
// iteration must not allocate.
func TestTrainingStepAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(49))
	net := NewNetwork(
		NewLinear(4, 15, rng), NewSigmoid(),
		NewLinear(15, 15, rng), NewSigmoid(),
		NewLinear(15, 4, rng),
	)
	loss := NewCrossEntropy()
	opt := NewSGD(0.05, 0.9)
	_, labels := blobs(rng, 32)
	x := randFeatures(rng, 32, 4)
	batch := matrix.FromSlice(32, 4, x)
	target := ClassTarget(padLabels(labels, 4))
	net.TrainBatch(batch, target, loss, opt)
	if a := testing.AllocsPerRun(50, func() { net.TrainBatch(batch, target, loss, opt) }); a != 0 {
		t.Errorf("training step allocates %.1f/run, want 0", a)
	}
}

// padLabels clamps labels into [0, classes).
func padLabels(labels []int, classes int) []int {
	out := make([]int, len(labels))
	for i, l := range labels {
		out[i] = l % classes
	}
	return out
}

// TestNetworkClone checks that a clone predicts identically and is fully
// detached: training the clone must not perturb the original. The parallel
// sweep harness depends on this to give each worker a private model.
func TestNetworkClone(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	net := NewNetwork(
		NewLinear(5, 15, rng), NewSigmoid(),
		NewLinear(15, 15, rng), NewTanh(),
		NewLinear(15, 4, rng),
	)
	clone := net.Clone()
	var b1, b2 PredictBuffer
	feats := randFeatures(rng, 20, net.InDim())
	for r := 0; r < 20; r++ {
		s := feats[r*net.InDim() : (r+1)*net.InDim()]
		if net.Predict(s, &b1) != clone.Predict(s, &b2) {
			t.Fatal("clone disagrees with original before training")
		}
	}
	before := append([]float64(nil), net.Params()[0].Data()...)
	loss := NewCrossEntropy()
	opt := NewSGD(0.5, 0)
	batch := matrix.FromSlice(20, net.InDim(), feats)
	labels := make([]int, 20)
	clone.TrainBatch(batch, ClassTarget(labels), loss, opt)
	for i, v := range net.Params()[0].Data() {
		if before[i] != v {
			t.Fatal("training the clone mutated the original network")
		}
	}
}

// FuzzInferBatchEquivalence builds random network shapes and checks that
// batched inference matches per-sample inference bitwise (float32) and
// exactly (Q16.16) across random batch sizes — the fuzz half of the
// satellite equivalence suite.
func FuzzInferBatchEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(2))
	f.Add(int64(7), uint8(17), uint8(64))
	f.Add(int64(99), uint8(40), uint8(5))
	f.Fuzz(func(t *testing.T, seed int64, shape uint8, batch uint8) {
		rng := rand.New(rand.NewSource(seed))
		inDim := 1 + int(shape%8)
		hidden := 1 + int(shape/8)%24 // exercises both the n≤16 kernel and the fallback
		outDim := 2 + int(shape/4)%5
		rows := 1 + int(batch%80)
		acts := []func() Layer{func() Layer { return NewSigmoid() }, func() Layer { return NewReLU() }, func() Layer { return NewTanh() }}
		net := NewNetwork(
			NewLinear(inDim, hidden, rng), acts[int(shape)%3](),
			NewLinear(hidden, outDim, rng), NewSoftmax(),
		)
		f32, err := CompileFloat32(net)
		if err != nil {
			t.Fatal(err)
		}
		fx, err := CompileFixed(net)
		if err != nil {
			t.Fatal(err)
		}
		feats := randFeatures(rng, rows, inDim)
		classes := make([]int, rows)
		f32.InferBatch(feats, rows, classes)
		batchLogits := make([][]float32, rows)
		for r := 0; r < rows; r++ {
			batchLogits[r] = append([]float32(nil), f32.BatchLogits(r)...)
		}
		for r := 0; r < rows; r++ {
			sample := feats[r*inDim : (r+1)*inDim]
			if got := f32.Predict(sample); got != classes[r] {
				t.Fatalf("f32 sample %d: batch class %d, single class %d", r, classes[r], got)
			}
			for j, v := range f32.Logits(sample) {
				if batchLogits[r][j] != v {
					t.Fatalf("f32 sample %d logit %d: batch %v != single %v", r, j, batchLogits[r][j], v)
				}
			}
		}
		fxClasses := make([]int, rows)
		fx.InferBatch(feats, rows, fxClasses)
		for r := 0; r < rows; r++ {
			sample := feats[r*inDim : (r+1)*inDim]
			if got := fx.Predict(sample); got != fxClasses[r] {
				t.Fatalf("fixed sample %d: batch class %d, single class %d", r, fxClasses[r], got)
			}
		}
	})
}
