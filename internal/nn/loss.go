package nn

import (
	"fmt"

	"repro/internal/kmath"
	"repro/internal/matrix"
)

// Loss couples a scalar objective with its gradient w.r.t. the network
// output. Implementations own their gradient buffer, reused across calls.
type Loss interface {
	// Name identifies the loss in String output and experiment logs.
	Name() string
	// Forward returns the mean loss over the batch.
	Forward(pred *Mat, target Target) float64
	// Backward returns ∂L/∂pred for the most recent Forward.
	Backward() *Mat
}

// Target is the supervision for one batch: either class labels (for
// classification losses) or a dense value matrix (for regression losses).
type Target struct {
	Labels []int
	Values *Mat
}

// ClassTarget wraps integer class labels.
func ClassTarget(labels []int) Target { return Target{Labels: labels} }

// ValueTarget wraps a dense regression target.
func ValueTarget(v *Mat) Target { return Target{Values: v} }

// CrossEntropy is the fused softmax + negative-log-likelihood loss used by
// the paper's multi-class readahead classifier. Fusing the two keeps the
// gradient numerically stable: ∂L/∂logits = (softmax(logits) − onehot)/batch.
type CrossEntropy struct {
	probs *Mat
	grad  *Mat
	last  int
}

// NewCrossEntropy returns a cross-entropy loss.
func NewCrossEntropy() *CrossEntropy { return &CrossEntropy{} }

// Name implements Loss.
func (c *CrossEntropy) Name() string { return "cross-entropy" }

// Forward implements Loss. pred holds raw logits; target must carry Labels.
func (c *CrossEntropy) Forward(pred *Mat, target Target) float64 {
	labels := target.Labels
	if len(labels) != pred.Rows() {
		panic(fmt.Sprintf("nn: cross-entropy got %d labels for batch %d", len(labels), pred.Rows()))
	}
	if c.last != pred.Rows()*pred.Cols() {
		c.probs = matrix.New[float64](pred.Rows(), pred.Cols())
		c.grad = matrix.New[float64](pred.Rows(), pred.Cols())
		c.last = pred.Rows() * pred.Cols()
	}
	batch := pred.Rows()
	loss := 0.0
	inv := 1 / float64(batch)
	for i := 0; i < batch; i++ {
		if labels[i] < 0 || labels[i] >= pred.Cols() {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", labels[i], pred.Cols()))
		}
		p := kmath.Softmax(c.probs.Row(i), pred.Row(i))
		// Clamp to avoid log(0) when the network saturates.
		loss -= kmath.Log(kmath.Clamp(p[labels[i]], 1e-12, 1))
		g := c.grad.Row(i)
		copy(g, p)
		g[labels[i]] -= 1
		for j := range g {
			g[j] *= inv
		}
	}
	return loss * inv
}

// Backward implements Loss.
func (c *CrossEntropy) Backward() *Mat {
	if c.grad == nil {
		panic("nn: loss Backward before Forward")
	}
	return c.grad
}

// Probs returns the softmax probabilities computed by the last Forward.
func (c *CrossEntropy) Probs() *Mat { return c.probs }

// MSE is the mean-squared-error regression loss: mean((pred−target)²).
type MSE struct {
	grad *Mat
	last int
}

// NewMSE returns a mean-squared-error loss.
func NewMSE() *MSE { return &MSE{} }

// Name implements Loss.
func (m *MSE) Name() string { return "mse" }

// Forward implements Loss; target must carry Values with pred's shape.
func (m *MSE) Forward(pred *Mat, target Target) float64 {
	tv := target.Values
	if tv == nil || tv.Rows() != pred.Rows() || tv.Cols() != pred.Cols() {
		panic("nn: MSE target shape mismatch")
	}
	if m.last != pred.Rows()*pred.Cols() {
		m.grad = matrix.New[float64](pred.Rows(), pred.Cols())
		m.last = pred.Rows() * pred.Cols()
	}
	n := float64(pred.Rows() * pred.Cols())
	loss := 0.0
	ps, ts, gs := pred.Data(), tv.Data(), m.grad.Data()
	for i := range ps {
		d := ps[i] - ts[i]
		loss += d * d
		gs[i] = 2 * d / n
	}
	return loss / n
}

// Backward implements Loss.
func (m *MSE) Backward() *Mat {
	if m.grad == nil {
		panic("nn: loss Backward before Forward")
	}
	return m.grad
}

// BCE is binary cross-entropy over logits (one output column), the loss
// LinnOS-style binary admit/reject models use; included to show KML covers
// that related-work case (§5).
type BCE struct {
	grad *Mat
	last int
}

// NewBCE returns a binary cross-entropy-with-logits loss.
func NewBCE() *BCE { return &BCE{} }

// Name implements Loss.
func (b *BCE) Name() string { return "bce" }

// Forward implements Loss. pred is batch×1 logits; target.Labels holds 0/1.
func (b *BCE) Forward(pred *Mat, target Target) float64 {
	labels := target.Labels
	if pred.Cols() != 1 {
		panic("nn: BCE needs a single output column")
	}
	if len(labels) != pred.Rows() {
		panic("nn: BCE label count mismatch")
	}
	if b.last != pred.Rows() {
		b.grad = matrix.New[float64](pred.Rows(), 1)
		b.last = pred.Rows()
	}
	inv := 1 / float64(pred.Rows())
	loss := 0.0
	for i := 0; i < pred.Rows(); i++ {
		z := pred.At(i, 0)
		y := float64(labels[i])
		if y != 0 && y != 1 {
			panic("nn: BCE labels must be 0 or 1")
		}
		// Stable: log(1+e^z) − y·z  ==  max(z,0) − y·z + log(1+e^−|z|)
		m := z
		if m < 0 {
			m = 0
		}
		loss += m - y*z + kmath.Log1p(kmath.Exp(-kmath.Abs(z)))
		b.grad.Set(i, 0, (kmath.Sigmoid(z)-y)*inv)
	}
	return loss * inv
}

// Backward implements Loss.
func (b *BCE) Backward() *Mat {
	if b.grad == nil {
		panic("nn: loss Backward before Forward")
	}
	return b.grad
}
