#!/bin/sh
# trace_smoke.sh — end-to-end smoke test of decision tracing: boot
# kml-served with -sim (which runs full closed-loop tuner decisions
# against the deployed model across a workload phase switch, recording a
# trace per decision into the server's arena), drive wire inference for
# server-side request traces, pull everything back over MsgTraces with
# kml-trace, and assert at least one COMPLETE span tree plus moving
# drift gauges. CI runs this after telemetry_smoke.sh.
set -eu

cd "$(dirname "$0")/.."
TMP="$(mktemp -d)"
SOCK="$TMP/kml.sock"
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

echo "== build"
go build -o "$TMP/kml-served" ./cmd/kml-served
go build -o "$TMP/kml-trace" ./cmd/kml-trace
go build -o "$TMP/kml-serve-bench" ./cmd/kml-serve-bench

echo "== start daemon with -sim (phase-switching closed loop)"
"$TMP/kml-served" \
    -addr "$SOCK" \
    -registry "$TMP/registry" \
    -deploy testdata/models/readahead.kml \
    -kind nn -name readahead-nn \
    -sim 6 -sim-workload readseq,readrandom \
    -norm testdata/models/readahead.norm \
    -drift-window 3 \
    >"$TMP/served.log" 2>&1 &
PID=$!

# The sim runs before the socket opens; the fill alone takes a while.
i=0
while [ ! -S "$SOCK" ]; do
    i=$((i + 1))
    if [ "$i" -gt 1200 ]; then
        echo "daemon never created socket" >&2
        cat "$TMP/served.log" >&2
        exit 1
    fi
    sleep 0.1
done
grep -q "^sim: 6 decision windows" "$TMP/served.log"

echo "== wire traffic for server-side request traces"
"$TMP/kml-serve-bench" -addr "$SOCK" -n 50 -batch 1 -conns 1 >/dev/null
"$TMP/kml-serve-bench" -addr "$SOCK" -n 100 -batch 10 -conns 1 >/dev/null

echo "== pull traces"
"$TMP/kml-trace" -addr "$SOCK" >"$TMP/traces.out"
head -20 "$TMP/traces.out"

# At least one complete TUNER span tree: the five decision-path child
# stages all present, plus outcome attribution from the page cache.
for stage in feature normalize infer apply outcome; do
    grep -q "─ $stage" "$TMP/traces.out" || {
        echo "no $stage span in any trace" >&2
        exit 1
    }
done
grep -q "hit rate [0-9]*pm" "$TMP/traces.out"
# Server-side request traces came through the same surface.
grep -q "─ parse" "$TMP/traces.out"
grep -q "─ encode" "$TMP/traces.out"
# The trailer counts at least one complete trace.
COMPLETE=$(sed -n 's/^[0-9]* traces shown, \([0-9]*\) complete.*/\1/p' "$TMP/traces.out")
case "$COMPLETE" in ''|0) echo "no complete trace ($COMPLETE)" >&2; exit 1 ;; esac

echo "== filters"
"$TMP/kml-trace" -addr "$SOCK" -slow 1h | grep -q "^0 traces shown"
"$TMP/kml-trace" -addr "$SOCK" -since 24h | grep -q "complete"

echo "== drift gauges moved across the phase switch"
"$TMP/kml-served" -addr "$SOCK" -status >"$TMP/status.out"
grep "^drift " "$TMP/status.out"
# The -sim tuner completed drift windows spanning readseq -> readrandom.
DRIFT=$(sed -n 's/^drift readahead_drift.*windows=\([0-9]*\).*/\1/p' "$TMP/status.out")
case "$DRIFT" in ''|0) echo "readahead drift monitor saw no windows" >&2; exit 1 ;; esac
# The serving-path monitor observed the wire traffic.
grep -q "^drift mserve_drift" "$TMP/status.out"

echo "== graceful shutdown"
kill -TERM "$PID"
i=0
while kill -0 "$PID" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 150 ]; then
        echo "daemon did not exit after SIGTERM" >&2
        exit 1
    fi
    sleep 0.1
done
STATUS=0
wait "$PID" || STATUS=$?
if [ "$STATUS" -ne 0 ]; then
    echo "daemon exited with status $STATUS" >&2
    cat "$TMP/served.log" >&2
    exit 1
fi

echo "trace smoke: OK (complete_traces=$COMPLETE drift_windows=$DRIFT)"
