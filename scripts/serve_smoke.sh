#!/bin/sh
# serve_smoke.sh — end-to-end smoke test of the serving subsystem: build
# the daemon and bench, start kml-served on a unix socket with the
# checked-in trained model, drive 1000 batched inferences, check the
# stats endpoint, and verify a clean SIGTERM drain. CI runs this after
# the race tests; it is also the quickest way to see the serving path
# work locally.
set -eu

cd "$(dirname "$0")/.."
TMP="$(mktemp -d)"
SOCK="$TMP/kml.sock"
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

echo "== build"
go build -o "$TMP/kml-served" ./cmd/kml-served
go build -o "$TMP/kml-serve-bench" ./cmd/kml-serve-bench

echo "== start daemon"
"$TMP/kml-served" \
    -addr "$SOCK" \
    -registry "$TMP/registry" \
    -deploy testdata/models/readahead.kml \
    -kind nn -name readahead-nn \
    >"$TMP/served.log" 2>&1 &
PID=$!

i=0
while [ ! -S "$SOCK" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "daemon never created socket" >&2
        cat "$TMP/served.log" >&2
        exit 1
    fi
    sleep 0.1
done

echo "== bench (1000 batched inferences)"
"$TMP/kml-serve-bench" -addr "$SOCK" -n 1000 -batch 50 -conns 2 | tee "$TMP/bench.out"
grep -q "throughput_ips=" "$TMP/bench.out"
TPUT=$(sed -n 's/^throughput_ips=//p' "$TMP/bench.out")
case "$TPUT" in
    ''|0) echo "zero throughput" >&2; exit 1 ;;
esac

echo "== status"
# The flight recorder fills on the server's asynchronous collection
# thread; give it a beat to drain the bench traffic.
sleep 0.3
"$TMP/kml-served" -addr "$SOCK" -status | tee "$TMP/status.out"
grep -q "^active_version      1$" "$TMP/status.out"
grep -q "^dropped             0$" "$TMP/status.out"
# Telemetry surface: batched-inference latency percentiles and the last
# served decisions, each stamped with the model version that made it.
grep -q "^mserve_batch_infer_ns count=" "$TMP/status.out"
grep -Eq "^decision t=[0-9]+ class=-?[0-9]+ rows=[0-9]+ v1$" "$TMP/status.out"

echo "== graceful shutdown"
kill -TERM "$PID"
i=0
while kill -0 "$PID" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 150 ]; then
        echo "daemon did not exit after SIGTERM" >&2
        exit 1
    fi
    sleep 0.1
done
STATUS=0
wait "$PID" || STATUS=$?
if [ "$STATUS" -ne 0 ]; then
    echo "daemon exited with status $STATUS" >&2
    cat "$TMP/served.log" >&2
    exit 1
fi
grep -q "draining" "$TMP/served.log"

echo "serve smoke: OK (throughput_ips=$TPUT)"
