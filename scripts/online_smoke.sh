#!/bin/sh
# online_smoke.sh — end-to-end smoke test of the closed online-learning
# loop (internal/olearn) inside kml-served. Two daemon boots, same
# steady readseq phase, a deliberately small drift budget so the trigger
# fires against the offline training baseline:
#
#   1. benign: the retrain relearns the phase, the canary matches the
#      pre-deploy hit-rate baseline, and the new version COMMITS;
#   2. poisoned (-sim-poison 1): the retrain mislabels every example, the
#      deployed model stops recognizing the scan, deep readahead turns
#      into 1-page fills, the canary collapses, and the controller
#      auto-ROLLS BACK to the original version.
#
# Both outcomes are asserted over the real operator surfaces: -status
# and kml-trace -learn (the MsgLearnStatus wire message). CI runs this
# after trace_smoke.sh.
set -eu

cd "$(dirname "$0")/.."
TMP="$(mktemp -d)"
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT
PID=""

echo "== build"
go build -o "$TMP/kml-served" ./cmd/kml-served
go build -o "$TMP/kml-trace" ./cmd/kml-trace

# boot_sim <name> [extra flags...] — run one -olearn simulated boot and
# capture -status and kml-trace -learn output, then shut down cleanly.
boot_sim() {
    NAME="$1"
    shift
    SOCK="$TMP/$NAME.sock"
    "$TMP/kml-served" \
        -addr "$SOCK" \
        -registry "$TMP/registry-$NAME" \
        -deploy testdata/models/readahead.kml \
        -kind nn -name readahead-nn \
        -sim 20 -sim-workload readseq \
        -norm testdata/models/readahead.norm \
        -drift-window 8 \
        -olearn -learn-budget-mz 500 \
        "$@" \
        >"$TMP/$NAME.log" 2>&1 &
    PID=$!
    # The sim (including any retrain + canary) runs before the socket opens.
    i=0
    while [ ! -S "$SOCK" ]; do
        i=$((i + 1))
        if [ "$i" -gt 2400 ]; then
            echo "daemon never created socket" >&2
            cat "$TMP/$NAME.log" >&2
            exit 1
        fi
        sleep 0.1
    done
    "$TMP/kml-served" -addr "$SOCK" -status >"$TMP/$NAME.status"
    "$TMP/kml-trace" -addr "$SOCK" -learn >"$TMP/$NAME.learn"
    kill -TERM "$PID"
    i=0
    while kill -0 "$PID" 2>/dev/null; do
        i=$((i + 1))
        if [ "$i" -gt 150 ]; then
            echo "daemon did not exit after SIGTERM" >&2
            exit 1
        fi
        sleep 0.1
    done
    STATUS=0
    wait "$PID" || STATUS=$?
    PID=""
    if [ "$STATUS" -ne 0 ]; then
        echo "daemon exited with status $STATUS" >&2
        cat "$TMP/$NAME.log" >&2
        exit 1
    fi
}

# learn_field <file> <name> — extract one counter off the "learn " line.
learn_field() {
    sed -n "s/^learn .*[ ]$2=\([0-9-]*\).*/\1/p" "$1"
}

echo "== benign retrain: drift fires, canary holds, version commits"
boot_sim commit
cat "$TMP/commit.learn"
RETRAINS=$(learn_field "$TMP/commit.status" retrains)
DEPLOYS=$(learn_field "$TMP/commit.status" deploys)
COMMITS=$(learn_field "$TMP/commit.status" commits)
ROLLBACKS=$(learn_field "$TMP/commit.status" rollbacks)
[ "${RETRAINS:-0}" -ge 1 ] || { echo "no retrain ran (retrains=$RETRAINS)" >&2; exit 1; }
[ "${DEPLOYS:-0}" -ge 1 ] || { echo "no version deployed (deploys=$DEPLOYS)" >&2; exit 1; }
[ "${COMMITS:-0}" -ge 1 ] || { echo "canary never committed (commits=$COMMITS)" >&2; exit 1; }
[ "${ROLLBACKS:-0}" -eq 0 ] || { echo "benign retrain rolled back" >&2; exit 1; }
# The committed version is live: the controller deployed version 2.
grep -q "^active_version      2" "$TMP/commit.status"
grep -q "committed" "$TMP/commit.learn"

echo "== poisoned retrain: canary collapses, controller rolls back"
boot_sim poison -sim-poison 1
cat "$TMP/poison.learn"
RETRAINS=$(learn_field "$TMP/poison.status" retrains)
ROLLBACKS=$(learn_field "$TMP/poison.status" rollbacks)
COMMITS=$(learn_field "$TMP/poison.status" commits)
[ "${RETRAINS:-0}" -ge 1 ] || { echo "no retrain ran (retrains=$RETRAINS)" >&2; exit 1; }
[ "${ROLLBACKS:-0}" -eq 1 ] || { echo "poisoned model not rolled back (rollbacks=$ROLLBACKS)" >&2; exit 1; }
[ "${COMMITS:-0}" -eq 0 ] || { echo "poisoned model committed (commits=$COMMITS)" >&2; exit 1; }
# Auto-rollback restored the original deployment.
grep -q "^active_version      1" "$TMP/poison.status"
grep -q "rolled-back" "$TMP/poison.learn"
# The canary saw a real regression, not a coin flip: the rolled-back
# event's canary hit rate must sit below its pre-deploy baseline.
BASE=$(sed -n 's/^retrain .*rolled-back.*baseline=\([0-9-]*\)pm.*/\1/p' "$TMP/poison.learn")
CANARY=$(sed -n 's/^retrain .*rolled-back.*canary=\([0-9-]*\)pm.*/\1/p' "$TMP/poison.learn")
if [ -z "$BASE" ] || [ -z "$CANARY" ] || [ "$CANARY" -ge "$BASE" ]; then
    echo "rollback event lacks a regressed canary (baseline=${BASE}pm canary=${CANARY}pm)" >&2
    exit 1
fi

echo "online smoke: OK (poison rollback: baseline=${BASE}pm canary=${CANARY}pm)"
