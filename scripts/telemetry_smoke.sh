#!/bin/sh
# telemetry_smoke.sh — end-to-end smoke test of the observability layer:
# boot kml-served with the HTTP debug listener, drive mixed traffic
# (single and batched inference), scrape /metrics and the MsgMetrics
# wire surface, and assert the request-latency histograms actually
# observed the traffic. CI runs this after serve_smoke.sh.
set -eu

cd "$(dirname "$0")/.."
TMP="$(mktemp -d)"
SOCK="$TMP/kml.sock"
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

echo "== build"
go build -o "$TMP/kml-served" ./cmd/kml-served
go build -o "$TMP/kml-serve-bench" ./cmd/kml-serve-bench

echo "== start daemon with debug listener"
"$TMP/kml-served" \
    -addr "$SOCK" \
    -registry "$TMP/registry" \
    -deploy testdata/models/readahead.kml \
    -kind nn -name readahead-nn \
    -debug-addr 127.0.0.1:0 \
    >"$TMP/served.log" 2>&1 &
PID=$!

i=0
while [ ! -S "$SOCK" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "daemon never created socket" >&2
        cat "$TMP/served.log" >&2
        exit 1
    fi
    sleep 0.1
done

# The daemon prints the resolved debug address (it was bound with :0).
i=0
while ! grep -q "debug listening on" "$TMP/served.log"; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "daemon never announced debug listener" >&2
        cat "$TMP/served.log" >&2
        exit 1
    fi
    sleep 0.1
done
DEBUG_URL=$(sed -n 's/^debug listening on //p' "$TMP/served.log")
echo "debug url: $DEBUG_URL"

echo "== traffic (singles and batches)"
"$TMP/kml-serve-bench" -addr "$SOCK" -n 200 -batch 1 -conns 1 >/dev/null
"$TMP/kml-serve-bench" -addr "$SOCK" -n 1000 -batch 50 -conns 2 >/dev/null
sleep 0.3 # let the async collection thread fill the flight recorder

echo "== /metrics"
curl -fsS "$DEBUG_URL/metrics" >"$TMP/metrics.out"
head -5 "$TMP/metrics.out"
# Both inference histograms observed traffic.
INFER=$(sed -n 's/^mserve_infer_ns_count //p' "$TMP/metrics.out")
BATCH=$(sed -n 's/^mserve_batch_infer_ns_count //p' "$TMP/metrics.out")
case "$INFER" in ''|0) echo "mserve_infer_ns never observed ($INFER)" >&2; exit 1 ;; esac
case "$BATCH" in ''|0) echo "mserve_batch_infer_ns never observed ($BATCH)" >&2; exit 1 ;; esac
# Percentiles and cumulative buckets render.
grep -q "^mserve_infer_ns_p99 " "$TMP/metrics.out"
grep -q "^mserve_infer_ns_bucket_le_" "$TMP/metrics.out"
# The pipeline and server gauges are exposed.
grep -q "^mserve_pipeline_collected " "$TMP/metrics.out"
grep -q "^mserve_active_version 1$" "$TMP/metrics.out"

echo "== expvar and pprof"
curl -fsS "$DEBUG_URL/debug/vars" | grep -q '"cmdline"'
curl -fsS "$DEBUG_URL/debug/pprof/" >/dev/null

echo "== MsgMetrics via -status"
"$TMP/kml-served" -addr "$SOCK" -status >"$TMP/status.out"
grep -q "^mserve_infer_ns count=" "$TMP/status.out"
grep -Eq "^decision t=[0-9]+ class=-?[0-9]+ rows=[0-9]+ v1$" "$TMP/status.out"

echo "== graceful shutdown"
kill -TERM "$PID"
i=0
while kill -0 "$PID" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 150 ]; then
        echo "daemon did not exit after SIGTERM" >&2
        exit 1
    fi
    sleep 0.1
done
STATUS=0
wait "$PID" || STATUS=$?
if [ "$STATUS" -ne 0 ]; then
    echo "daemon exited with status $STATUS" >&2
    cat "$TMP/served.log" >&2
    exit 1
fi

echo "telemetry smoke: OK (infer_count=$INFER batch_count=$BATCH)"
