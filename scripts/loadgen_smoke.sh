#!/bin/sh
# loadgen_smoke.sh — end-to-end smoke test of cross-connection batch
# coalescing under open-loop load: build the daemon and kml-loadgen,
# start kml-served with a gather window enabled, sweep two offered-load
# steps across many concurrent connections, and assert (a) zero failed
# requests, (b) the server actually fused requests from different
# connections (mean achieved batch > 1 at the higher rate), and (c) the
# -status surface reports the coalescer's config and counters. CI runs
# this after serve-smoke; it is also the quickest way to watch the
# coalescer work locally.
set -eu

cd "$(dirname "$0")/.."
TMP="$(mktemp -d)"
SOCK="$TMP/kml.sock"
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

echo "== build"
go build -o "$TMP/kml-served" ./cmd/kml-served
go build -o "$TMP/kml-loadgen" ./cmd/kml-loadgen

echo "== start daemon (coalescing on)"
# A generous 1ms window keeps the batch>1 assertion robust on slow CI
# machines; real deployments run 50-200us.
"$TMP/kml-served" \
    -addr "$SOCK" \
    -registry "$TMP/registry" \
    -deploy testdata/models/readahead.kml \
    -kind nn -name readahead-nn \
    -max-conns 160 \
    -coalesce-window 1ms -coalesce-max 64 \
    >"$TMP/served.log" 2>&1 &
PID=$!

i=0
while [ ! -S "$SOCK" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "daemon never created socket" >&2
        cat "$TMP/served.log" >&2
        exit 1
    fi
    sleep 0.1
done

echo "== open-loop sweep (128 conns, 2 offered-load steps)"
"$TMP/kml-loadgen" -addr "$SOCK" \
    -conns 128 -rates 2000,8000 -duration 2s -warmup 300ms -seed 7 \
    | tee "$TMP/loadgen.out"

# Zero failed requests at every step (kml-loadgen exits nonzero on any
# error, so reaching here already means the sweep was clean; make the
# column assertion explicit anyway).
STEPS=$(grep -Ec "^ *[0-9]+ +[0-9]+ +0 " "$TMP/loadgen.out" || true)
if [ "$STEPS" -ne 2 ]; then
    echo "expected 2 zero-error sweep steps, got $STEPS" >&2
    exit 1
fi

# The higher-rate step must show cross-connection gathering: mean
# achieved batch strictly greater than 1.
MEAN=$(awk 'END { print $NF }' "$TMP/loadgen.out")
case "$MEAN" in
    ''|0|0.00|1.00) echo "no coalescing at 8000 rps (mean_batch=$MEAN)" >&2; exit 1 ;;
esac
awk -v m="$MEAN" 'BEGIN { exit !(m > 1.0) }' || {
    echo "mean achieved batch $MEAN not > 1" >&2
    exit 1
}

echo "== status"
"$TMP/kml-served" -addr "$SOCK" -status | tee "$TMP/status.out"
grep -q "^coalesce_window_ns  1000000$" "$TMP/status.out"
grep -q "^coalesce_max        64$" "$TMP/status.out"
grep -Eq "^coalesce_batches    [1-9][0-9]*$" "$TMP/status.out"
grep -q "^errors              0$" "$TMP/status.out"
grep -q "^mserve_coalesce_batch count=" "$TMP/status.out"

echo "== graceful shutdown"
kill -TERM "$PID"
i=0
while kill -0 "$PID" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 150 ]; then
        echo "daemon did not exit after SIGTERM" >&2
        exit 1
    fi
    sleep 0.1
done
STATUS=0
wait "$PID" || STATUS=$?
if [ "$STATUS" -ne 0 ]; then
    echo "daemon exited with status $STATUS" >&2
    cat "$TMP/served.log" >&2
    exit 1
fi

echo "loadgen smoke: OK (mean_batch=$MEAN)"
