#!/bin/sh
# bench_json.sh — regenerate the hot-path benchmark snapshot as JSON.
#
# Runs the E5 overhead micro-benchmarks (single-sample and batched
# inference in float64/float32/Q16.16, plus one online training
# iteration), the E8 decision-trace span tax, the E10 time-series
# capture tick, the E11 coalesced serving loop (32 connections sharing
# 100us gather windows), and the E12 black-box flight-recorder append
# with -benchmem and converts the output to a machine-readable JSON
# document. The "pr" field is parsed from the output name
# (BENCH_PR10.json -> 10).
#
# Each benchmark runs BENCHCOUNT times (default 3) and the snapshot
# keeps the per-metric MINIMUM across runs: best-of-N is the stable
# estimator of the code's cost on a noisy recording machine — one
# descheduling blip inflates a mean but never deflates a minimum. The
# PR4->PR5 "regression" the ratchet flagged was exactly such a blip
# (single run, busy machine); best-of-N is the fix.
#
# Usage: sh scripts/bench_json.sh [output.json]
#   BENCHTIME=0.2s BENCHCOUNT=1 sh scripts/bench_json.sh out.json  # quick CI smoke
#
# Only POSIX sh + awk/sed are used: no dependencies beyond the Go
# toolchain.
set -eu

out=${1:-BENCH_PR10.json}
benchtime=${BENCHTIME:-1s}
benchcount=${BENCHCOUNT:-3}
cd "$(dirname "$0")/.."

# The snapshot's PR number comes from the conventional file name;
# anything unconventional records pr 0 (still a valid snapshot, just
# outside the -dir ratchet ordering).
pr=$(expr "/$out" : '.*BENCH_PR\([0-9][0-9]*\)\.json$' || true)
pr=${pr:-0}

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

go test -run '^$' \
    -bench 'E5_Inference$|E5_InferenceBatched$|E5_FixedInference$|E5_FixedInferenceBatched$|E5_TrainingIteration$|E8_TraceSpan$|E10_TimeSeriesTick$|E11_CoalescedServe$|E12_BlackboxRecord$' \
    -benchmem -benchtime "$benchtime" -count "$benchcount" . | tee "$tmp"

goos=$(sed -n 's/^goos: //p' "$tmp" | head -1)
goarch=$(sed -n 's/^goarch: //p' "$tmp" | head -1)
cpu=$(sed -n 's/^cpu: //p' "$tmp" | head -1)
cores=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
gover=$(go env GOVERSION)

{
    printf '{\n'
    printf '  "pr": %s,\n' "$pr"
    printf '  "go": "%s",\n' "$gover"
    printf '  "goos": "%s",\n' "$goos"
    printf '  "goarch": "%s",\n' "$goarch"
    printf '  "cpu": "%s",\n' "$cpu"
    printf '  "cores": %s,\n' "$cores"
    printf '  "benchtime": "%s",\n' "$benchtime"
    printf '  "benchcount": %s,\n' "$benchcount"
    printf '  "benchmarks": [\n'
    awk '
        /^Benchmark/ {
            name = $1
            sub(/^Benchmark/, "", name)
            sub(/-[0-9]+$/, "", name)
            if (!(name in iters)) order[++n] = name
            if ($2 + 0 > iters[name]) iters[name] = $2
            for (i = 3; i + 1 <= NF; i += 2) {
                m = $(i + 1)
                v = $i + 0
                key = name SUBSEP m
                if (!(key in best) || v < best[key]) best[key] = v
                if (index("|" mlist[name] "|", "|" m "|") == 0)
                    mlist[name] = (mlist[name] == "" ? m : mlist[name] "|" m)
            }
        }
        END {
            sep = ""
            for (j = 1; j <= n; j++) {
                name = order[j]
                printf "%s    {\"name\": \"%s\", \"iters\": %s, \"metrics\": {", sep, name, iters[name]
                cnt = split(mlist[name], ms, "|")
                msep = ""
                for (k = 1; k <= cnt; k++) {
                    printf "%s\"%s\": %s", msep, ms[k], best[name SUBSEP ms[k]]
                    msep = ", "
                }
                printf "}}"
                sep = ",\n"
            }
            printf "\n"
        }
    ' "$tmp"
    printf '  ]\n'
    printf '}\n'
} >"$out"

echo "wrote $out (pr $pr, best of $benchcount x $benchtime)"
