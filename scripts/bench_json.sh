#!/bin/sh
# bench_json.sh — regenerate the hot-path benchmark snapshot as JSON.
#
# Runs the E5 overhead micro-benchmarks (single-sample and batched
# inference in float64/float32/Q16.16, plus one online training
# iteration) plus the E8 decision-trace span tax with -benchmem and
# converts the output to a machine-readable JSON document. The
# checked-in snapshot is BENCH_PR5.json; regenerate it with
# `make bench-json`.
#
# Usage: sh scripts/bench_json.sh [output.json]
#   BENCHTIME=0.2s sh scripts/bench_json.sh out.json   # quick CI smoke
#
# Only POSIX sh + awk/sed are used: no dependencies beyond the Go
# toolchain.
set -eu

out=${1:-BENCH_PR5.json}
benchtime=${BENCHTIME:-1s}
cd "$(dirname "$0")/.."

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

go test -run '^$' \
    -bench 'E5_Inference$|E5_InferenceBatched$|E5_FixedInference$|E5_FixedInferenceBatched$|E5_TrainingIteration$|E8_TraceSpan$' \
    -benchmem -benchtime "$benchtime" -count 1 . | tee "$tmp"

goos=$(sed -n 's/^goos: //p' "$tmp" | head -1)
goarch=$(sed -n 's/^goarch: //p' "$tmp" | head -1)
cpu=$(sed -n 's/^cpu: //p' "$tmp" | head -1)
cores=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
gover=$(go env GOVERSION)

{
    printf '{\n'
    printf '  "pr": 5,\n'
    printf '  "go": "%s",\n' "$gover"
    printf '  "goos": "%s",\n' "$goos"
    printf '  "goarch": "%s",\n' "$goarch"
    printf '  "cpu": "%s",\n' "$cpu"
    printf '  "cores": %s,\n' "$cores"
    printf '  "benchtime": "%s",\n' "$benchtime"
    printf '  "benchmarks": [\n'
    awk '
        /^Benchmark/ {
            name = $1
            sub(/^Benchmark/, "", name)
            sub(/-[0-9]+$/, "", name)
            printf "%s    {\"name\": \"%s\", \"iters\": %s, \"metrics\": {", sep, name, $2
            msep = ""
            for (i = 3; i + 1 <= NF; i += 2) {
                printf "%s\"%s\": %s", msep, $(i + 1), $i
                msep = ", "
            }
            printf "}}"
            sep = ",\n"
        }
        END { printf "\n" }
    ' "$tmp"
    printf '  ]\n'
    printf '}\n'
} >"$out"

echo "wrote $out"
