#!/bin/sh
# postmortem_smoke.sh — end-to-end crash-forensics smoke test: boot
# kml-served with a black-box flight recorder and fast capture
# intervals, drive open-loop load with kml-loadgen, then kill the
# daemon with SIGKILL — the one signal nothing can hook — and assert
# that kml-postmortem reconstructs the final window from the file
# alone: time-series points, at least one decision trace, and the
# learner's last recorded state. Also covers live mode (MsgBlackbox
# sync against the running daemon) and the -raw → kml-top -from
# replay path. CI runs this after loadgen_smoke.sh.
set -eu

cd "$(dirname "$0")/.."
TMP="$(mktemp -d)"
SOCK="$TMP/kml.sock"
BOX="$TMP/kml.blackbox"
trap 'kill -9 "$PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

echo "== build"
go build -o "$TMP/kml-served" ./cmd/kml-served
go build -o "$TMP/kml-loadgen" ./cmd/kml-loadgen
go build -o "$TMP/kml-postmortem" ./cmd/kml-postmortem
go build -o "$TMP/kml-top" ./cmd/kml-top

echo "== start daemon with black box (100ms flush, 50ms ts capture)"
"$TMP/kml-served" \
    -addr "$SOCK" \
    -registry "$TMP/registry" \
    -deploy testdata/models/readahead.kml \
    -kind nn -name readahead-nn \
    -sim 4 -sim-workload readseq,readrandom \
    -norm testdata/models/readahead.norm \
    -ts-interval 50ms \
    -blackbox "$BOX" -blackbox-size 1048576 -blackbox-interval 100ms \
    >"$TMP/served.log" 2>&1 &
PID=$!

i=0
while [ ! -S "$SOCK" ]; do
    i=$((i + 1))
    if [ "$i" -gt 1200 ]; then
        echo "daemon never created socket" >&2
        cat "$TMP/served.log" >&2
        exit 1
    fi
    sleep 0.1
done
grep -q "^blackbox $BOX" "$TMP/served.log"

echo "== offered load spanning several flush intervals"
"$TMP/kml-loadgen" -addr "$SOCK" -conns 8 -rate 2000 -duration 1s \
    -warmup 200ms >"$TMP/loadgen.out"

echo "== live mode: sync + read the running daemon's box"
"$TMP/kml-postmortem" -addr "$SOCK" >"$TMP/live.out"
grep -q "^black box $BOX" "$TMP/live.out"
grep -q " torn$\|, 0 torn" "$TMP/live.out"

echo "== status line reports the box"
"$TMP/kml-served" -addr "$SOCK" -status | grep "^blackbox "

echo "== SIGKILL: no shutdown hook runs"
kill -9 "$PID"
i=0
while kill -0 "$PID" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "daemon survived SIGKILL?" >&2
        exit 1
    fi
    sleep 0.1
done
wait "$PID" 2>/dev/null || true

echo "== postmortem reconstructs the flight from the file alone"
"$TMP/kml-postmortem" "$BOX" >"$TMP/report.out"
cat "$TMP/report.out"
# The scan found intact records of every kind the sampler persists.
grep -q "^records  " "$TMP/report.out"
if grep -q " 0 metrics" "$TMP/report.out"; then
    echo "no metrics records recovered" >&2
    exit 1
fi
if grep -q " 0 timeseries" "$TMP/report.out"; then
    echo "no time-series records recovered" >&2
    exit 1
fi
# The merged series has points and a real throughput line.
grep -q "^series    [1-9][0-9]* points\|^throughput" "$TMP/report.out"
if grep -q "no time-series points recovered" "$TMP/report.out"; then
    echo "postmortem recovered no time-series points" >&2
    exit 1
fi
# At least one decision trace survived, rendered as a span tree.
grep -q "^trace " "$TMP/report.out"
grep -q "└─" "$TMP/report.out"
if grep -q "^traces    none recovered" "$TMP/report.out"; then
    echo "postmortem recovered no traces" >&2
    exit 1
fi
# The learner's last recorded state made it to disk (-sim registers the
# readahead drift monitor; learn records need -olearn, so only require
# the drift trajectory here).
grep -q "^drift     readahead_drift" "$TMP/report.out"

echo "== -last narrows the window"
"$TMP/kml-postmortem" -last 2s "$BOX" >"$TMP/last.out"
grep -q "^records  " "$TMP/last.out"

echo "== -raw replays through kml-top -from"
"$TMP/kml-postmortem" -raw "$BOX" >"$TMP/series.bin"
test -s "$TMP/series.bin"
"$TMP/kml-top" -from "$TMP/series.bin" >"$TMP/replay.out"
grep -q "rows/s" "$TMP/replay.out"
grep -q "points @ " "$TMP/replay.out"

echo "== kml-top -from reads the box directly too"
"$TMP/kml-top" -from "$BOX" -raw >"$TMP/fromraw.out"
grep -q "^counters mserve_rows " "$TMP/fromraw.out"
NPOINTS=$(sed -n 's/^\([0-9][0-9]*\) points$/\1/p' "$TMP/fromraw.out")
case "$NPOINTS" in '' | 0) echo "box replay has no points" >&2; exit 1 ;; esac

echo "postmortem smoke: OK (points=$NPOINTS)"
