#!/bin/sh
# top_smoke.sh — end-to-end smoke test of the serving console and the
# time-series capture behind it: boot kml-served with -sim (so the
# readahead_* series have data too) and a fast -ts-interval, drive wire
# inference, then assert that (1) kml-top -once renders sane throughput,
# latency, and learn lines from MsgTimeSeries, (2) kml-top -raw shows a
# non-empty, strictly monotonic point capture, and (3) kml-trace -probe
# joins a client-stamped trace with the server's span tree over the
# wire. CI runs this after trace_smoke.sh.
set -eu

cd "$(dirname "$0")/.."
TMP="$(mktemp -d)"
SOCK="$TMP/kml.sock"
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

echo "== build"
go build -o "$TMP/kml-served" ./cmd/kml-served
go build -o "$TMP/kml-top" ./cmd/kml-top
go build -o "$TMP/kml-trace" ./cmd/kml-trace
go build -o "$TMP/kml-serve-bench" ./cmd/kml-serve-bench

echo "== start daemon with -sim and 50ms time-series capture"
"$TMP/kml-served" \
    -addr "$SOCK" \
    -registry "$TMP/registry" \
    -deploy testdata/models/readahead.kml \
    -kind nn -name readahead-nn \
    -sim 4 -sim-workload readseq,readrandom \
    -norm testdata/models/readahead.norm \
    -ts-interval 50ms \
    -debug-addr 127.0.0.1:0 \
    >"$TMP/served.log" 2>&1 &
PID=$!

i=0
while [ ! -S "$SOCK" ]; do
    i=$((i + 1))
    if [ "$i" -gt 1200 ]; then
        echo "daemon never created socket" >&2
        cat "$TMP/served.log" >&2
        exit 1
    fi
    sleep 0.1
done

echo "== wire traffic, spanning several capture intervals"
"$TMP/kml-serve-bench" -addr "$SOCK" -n 200 -batch 1 -conns 1 >/dev/null
sleep 0.3
"$TMP/kml-serve-bench" -addr "$SOCK" -n 200 -batch 4 -conns 1 >/dev/null
sleep 0.3

echo "== kml-top -once renders the console frame"
"$TMP/kml-top" -addr "$SOCK" -once >"$TMP/top.out"
cat "$TMP/top.out"
grep -q "^kml-top " "$TMP/top.out"
grep -q "rows/s" "$TMP/top.out"
# A live p99 from the captured mserve_infer_ns series.
grep -q "^infer *p50" "$TMP/top.out"
grep -q "p99 *[0-9]" "$TMP/top.out"
grep -q "^learn *state=" "$TMP/top.out"
# With traffic spanning intervals, the throughput line must not be the
# no-data placeholder.
if grep -q "no time series yet" "$TMP/top.out"; then
    echo "console rendered without time-series data" >&2
    exit 1
fi

echo "== raw capture: non-empty and strictly monotonic"
"$TMP/kml-top" -addr "$SOCK" -raw >"$TMP/raw.out"
head -5 "$TMP/raw.out"
NPOINTS=$(sed -n 's/^\([0-9][0-9]*\) points$/\1/p' "$TMP/raw.out")
case "$NPOINTS" in '' | 0 | 1) echo "raw capture has $NPOINTS points" >&2; exit 1 ;; esac
awk '
    $1 == "point" {
        if (prev != "" && $2 <= prev) { print "timestamps not monotonic: " $2 " after " prev; exit 1 }
        prev = $2
    }
' "$TMP/raw.out"
# Some interval actually saw rows: column 1 after the timestamp is the
# first configured counter (mserve_rows).
ROWS=$(awk '$1 == "point" { sum += $3 } END { print sum + 0 }' "$TMP/raw.out")
case "$ROWS" in '' | 0) echo "no rows captured in any interval" >&2; exit 1 ;; esac
grep -q "^counters mserve_rows " "$TMP/raw.out"

echo "== cross-process trace join (kml-trace -probe)"
"$TMP/kml-trace" -addr "$SOCK" -probe 3 >"$TMP/probe.out"
cat "$TMP/probe.out"
grep -q "3 probes sent, 3 joined across the wire" "$TMP/probe.out"
grep -q "joined client↔server, identical TraceID" "$TMP/probe.out"
# The joined tree shows both sides: client wire span and the server's
# queue span nested inside it.
grep -q "─ wire" "$TMP/probe.out"
grep -q "─ queue" "$TMP/probe.out"

echo "== debug HTTP pages (/traces, /learn, /timeseries)"
DEBUG_URL=$(sed -n 's#^debug listening on \(http://.*\)#\1#p' "$TMP/served.log")
if [ -n "$DEBUG_URL" ] && command -v curl >/dev/null 2>&1; then
    curl -fsS "$DEBUG_URL/traces" | grep -q "traces retained"
    curl -fsS "$DEBUG_URL/learn" | grep -q "^state="
    # /timeseries mirrors kml-top -raw: header lines plus captured points.
    curl -fsS "$DEBUG_URL/timeseries" >"$TMP/tshttp.out"
    grep -q "^interval_ns " "$TMP/tshttp.out"
    grep -q "^counters mserve_rows " "$TMP/tshttp.out"
    grep -q "^point " "$TMP/tshttp.out"
else
    echo "   (curl or debug url unavailable; skipping HTTP checks)"
fi

echo "== graceful shutdown"
kill -TERM "$PID"
i=0
while kill -0 "$PID" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 150 ]; then
        echo "daemon did not exit after SIGTERM" >&2
        exit 1
    fi
    sleep 0.1
done
STATUS=0
wait "$PID" || STATUS=$?
if [ "$STATUS" -ne 0 ]; then
    echo "daemon exited with status $STATUS" >&2
    cat "$TMP/served.log" >&2
    exit 1
fi

echo "top smoke: OK (points=$NPOINTS rows=$ROWS)"
