#!/bin/sh
# bench_ratchet.sh — fail the build when the newest committed benchmark
# snapshot regresses against the previous one.
#
# Compares the two newest BENCH_*<n>.json snapshots at the repo root
# with kml-benchdiff: any ns/op, ns/sample, or allocs/op metric growing
# by more than 15% (or any allocation count leaving zero) fails unless
# it is spelled out on the allowlist below. Regenerate the head snapshot
# with `make bench-json`; an intentional regression lands as an
# allowlist entry in this file, reviewed like any other diff.
#
# Usage: sh scripts/bench_ratchet.sh
#
# The allowlist is currently empty. The PR4 -> PR5 E5 regressions it
# used to carry turned out to be recording-machine noise, not code: a
# single-run snapshot taken on a busy machine. BENCH_PR7.json was
# recorded best-of-3 (see bench_json.sh) and comes in at or under the
# PR4 numbers across the board, so the E5 hot paths are gated again.
set -eu

cd "$(dirname "$0")/.."

exec go run ./cmd/kml-benchdiff -dir . -threshold 15
