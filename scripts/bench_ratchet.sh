#!/bin/sh
# bench_ratchet.sh — fail the build when the newest committed benchmark
# snapshot regresses against the previous one.
#
# Compares the two newest BENCH_*<n>.json snapshots at the repo root
# with kml-benchdiff: any ns/op, ns/sample, or allocs/op metric growing
# by more than 15% (or any allocation count leaving zero) fails unless
# it is spelled out on the allowlist below. Regenerate the head snapshot
# with `make bench-json`; an intentional regression lands as an
# allowlist entry in this file, reviewed like any other diff.
#
# Usage: sh scripts/bench_ratchet.sh
#
# Allowlist: BENCH_PR10.json was recorded on a measurably slower
# instance than PR9's — the PR9 *commit* rebuilt and re-benched on the
# PR10 recording machine reproduces the same E5_Inference (~650-755ns
# vs the archived 532) and E10_TimeSeriesTick (~400-445ns vs 313)
# numbers, with identical 0 allocs/op, so the deltas are machine drift,
# not code (neither hot path is touched by PR 10). Drop both entries
# when the next snapshot is recorded.
set -eu

cd "$(dirname "$0")/.."

exec go run ./cmd/kml-benchdiff -dir . -threshold 15 \
    -allow 'E5_Inference:ns/op,E10_TimeSeriesTick:ns/op'
