#!/bin/sh
# bench_ratchet.sh — fail the build when the newest committed benchmark
# snapshot regresses against the previous one.
#
# Compares the two newest BENCH_*<n>.json snapshots at the repo root
# with kml-benchdiff: any ns/op, ns/sample, or allocs/op metric growing
# by more than 15% (or any allocation count leaving zero) fails unless
# it is spelled out on the allowlist below. Regenerate the head snapshot
# with `make bench-json`; an intentional regression lands as an
# allowlist entry in this file, reviewed like any other diff.
#
# Usage: sh scripts/bench_ratchet.sh
#
# Current allowlist — the PR4 -> PR5 trade documented in ROADMAP.md:
# the fused batched-inference rewrite made rows>=16 scale (ns/sample
# drops with batch size) at the cost of single-sample and small-batch
# latency, and the same change pushed the float64 and Q16.16
# single-sample paths past the 15%% line on the CI machine.
set -eu

cd "$(dirname "$0")/.."

exec go run ./cmd/kml-benchdiff -dir . -threshold 15 -allow \
    "E5_Inference:ns/op,\
E5_FixedInference:ns/op,\
E5_InferenceBatched/rows1,\
E5_InferenceBatched/rows16,\
E5_InferenceBatched/rows64,\
E5_InferenceBatched/rows256"
