// Package repro is a from-scratch Go reproduction of "A Machine Learning
// Framework to Improve Storage System Performance" (Akgun, Aydin, Shaikh,
// Velikov, Zadok — HotStorage '21): KML, an ML framework designed to run
// inside an OS, demonstrated on the problem of tuning readahead values.
//
// The library half (internal/kmath, matrix, fixed, stats, ringbuf, memutil,
// nn, dtree, core) implements KML itself: from-scratch math, multi-precision
// matrices, layers/losses/backprop/SGD, decision trees, a lock-free
// collection ring feeding an asynchronous training thread, model
// serialization, and memory accounting. The substrate half (internal/clock,
// blockdev, pagecache, vfs, trace, sstable, kvstore, workload, sim)
// simulates the storage stack the paper evaluates on: NVMe/SATA device
// models on a virtual clock, a Linux-style page cache with on-demand
// readahead, an LSM key-value store standing in for RocksDB, and the six
// db_bench workloads. internal/features, internal/readahead and
// internal/bench implement the paper's case study and regenerate every
// table and figure; see DESIGN.md and EXPERIMENTS.md.
//
// The benchmarks in bench_test.go regenerate each experiment at reduced
// scale; the cmd/kml-* binaries run them at full scale.
package repro
