// Benchmarks regenerating every table and figure of the paper's evaluation
// (§4) at reduced scale, plus the ablations called out in DESIGN.md §5.
// Experiment IDs (E1..E7) refer to DESIGN.md's per-experiment index.
//
// Macro-benchmarks (Table 2, the sweep, Figure 2) run complete simulated
// experiments per iteration and report their results through
// b.ReportMetric: `speedup` is KML-tuned over vanilla throughput (the
// paper's Table-2 numbers), `best_ra_sectors` is the sweep's optimum,
// `acc_pct` is classification accuracy. Wall-clock ns/op is meaningless
// for those; the metrics are the output. Micro-benchmarks (inference,
// training, collection) measure real time and correspond to the paper's
// overhead study. Run with:
//
//	go test -bench=. -benchmem
package repro

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/blackbox"
	"repro/internal/blockdev"
	"repro/internal/core"
	"repro/internal/dtrace"
	"repro/internal/features"
	"repro/internal/mserve"
	"repro/internal/nn"
	"repro/internal/readahead"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/telemetry/tsrec"
	"repro/internal/workload"
)

// benchNVMe/benchSSD are the reduced-scale (-quick) environments: 8×
// smaller key space and cache than the full configuration with the same
// dataset-to-cache ratio, the same scale the cmd/kml-* -quick runs use.
func benchNVMe() sim.Config {
	return bench.QuickConfig(bench.DefaultNVMeConfig(1))
}

func benchSSD() sim.Config {
	return bench.QuickConfig(bench.DefaultSSDConfig(1))
}

// trained bundles are expensive; share them across benchmarks.
var (
	bundleOnce sync.Once
	nnBundle   bench.Bundle
	treeBundle bench.Bundle
	rawWindows []features.Vector
	rawLabels  []int
	bundleErr  error
)

func bundles(b *testing.B) (bench.Bundle, bench.Bundle) {
	b.Helper()
	bundleOnce.Do(func() {
		nnBundle, rawWindows, rawLabels, bundleErr = bench.TrainNNBundle(benchNVMe(),
			readahead.DatasetConfig{SecondsPerRun: 8},
			readahead.TrainConfig{Seed: 1})
		if bundleErr != nil {
			return
		}
		treeBundle, bundleErr = bench.TrainTreeBundle(rawWindows, rawLabels)
	})
	if bundleErr != nil {
		b.Fatal(bundleErr)
	}
	return nnBundle, treeBundle
}

// BenchmarkE1_Sweep regenerates the "studying the problem" study: the
// throughput-vs-readahead surface and the best value per workload.
func BenchmarkE1_Sweep(b *testing.B) {
	for _, kind := range []workload.Kind{workload.ReadSeq, workload.ReadRandom} {
		b.Run(kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := bench.RunSweep(benchSSD(), []workload.Kind{kind},
					[]int{8, 64, 256, 1024}, 2)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Best[0]), "best_ra_sectors")
			}
		})
	}
}

// BenchmarkE2_KFoldAccuracy regenerates the paper's 95.5% k-fold
// cross-validation accuracy claim (reported as acc_pct).
func BenchmarkE2_KFoldAccuracy(b *testing.B) {
	bundles(b) // collects rawWindows
	for i := 0; i < b.N; i++ {
		accs := readahead.KFoldCV(rawWindows, rawLabels, 5, readahead.TrainConfig{Seed: 1})
		b.ReportMetric(readahead.Mean(accs)*100, "acc_pct")
	}
}

// BenchmarkE3_Table2 regenerates Table 2: per-workload KML/vanilla speedup
// on both device models with the neural network.
func BenchmarkE3_Table2(b *testing.B) {
	nnB, _ := bundles(b)
	for _, dev := range []struct {
		name string
		cfg  sim.Config
	}{{"NVMe", benchNVMe()}, {"SSD", benchSSD()}} {
		for _, kind := range workload.AllKinds() {
			b.Run(dev.name+"/"+kind.String(), func(b *testing.B) {
				// 5-second runs amortize the untuned first (cold) second,
				// matching the archived cmd/kml-table2 -quick methodology.
				for i := 0; i < b.N; i++ {
					base, err := bench.RunVanilla(dev.cfg, kind, 5)
					if err != nil {
						b.Fatal(err)
					}
					tuned, _, err := bench.RunKML(dev.cfg, kind, 5, nnB)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(tuned.OpsPerSec()/base.OpsPerSec(), "speedup")
					b.ReportMetric(tuned.OpsPerSec(), "kml_ops/vsec")
				}
			})
		}
	}
}

// BenchmarkE6_Table2DTree regenerates the decision-tree variant of Table 2
// (the paper summarizes it as SSD 55% / NVMe 26% average gain).
func BenchmarkE6_Table2DTree(b *testing.B) {
	_, treeB := bundles(b)
	for _, kind := range []workload.Kind{workload.ReadRandom, workload.MixGraph} {
		b.Run("SSD/"+kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				base, err := bench.RunVanilla(benchSSD(), kind, 5)
				if err != nil {
					b.Fatal(err)
				}
				tuned, _, err := bench.RunKML(benchSSD(), kind, 5, treeB)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(tuned.OpsPerSec()/base.OpsPerSec(), "speedup")
			}
		})
	}
}

// BenchmarkE4_Figure2 regenerates the mixgraph timeline of Figure 2 and
// reports the overall speedup (the paper reports ~2.09× on their NVMe).
func BenchmarkE4_Figure2(b *testing.B) {
	nnB, _ := bundles(b)
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFigure2(benchNVMe(), 6, nnB)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Speedup, "speedup")
	}
}

// --- E5: the overhead study (real wall-clock measurements) ---

// BenchmarkE5_Inference measures readahead-model inference latency
// (paper: 21 µs).
func BenchmarkE5_Inference(b *testing.B) {
	net := readahead.NewModel(1)
	cls := readahead.NewNNClassifier(net)
	in := make([]float64, features.Count)
	cls.Predict(in)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cls.Predict(in)
	}
}

// BenchmarkE5_FixedInference measures the FPU-less Q16.16 inference path
// (E7: the quantized variant).
func BenchmarkE5_FixedInference(b *testing.B) {
	net := readahead.NewModel(1)
	cls, err := readahead.NewFixedClassifier(net)
	if err != nil {
		b.Fatal(err)
	}
	in := make([]float64, features.Count)
	cls.Predict(in)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cls.Predict(in)
	}
}

// batchFeatures builds rows feature vectors of deterministic noise,
// flattened row-major as PredictBatch expects.
func batchFeatures(rows int) []float64 {
	rng := rand.New(rand.NewSource(7))
	out := make([]float64, rows*features.Count)
	for i := range out {
		out[i] = rng.Float64()*2 - 1
	}
	return out
}

// BenchmarkE5_InferenceBatched measures the batched float32 inference
// path (nn.Float32Network.InferBatch) at several batch sizes. The
// ns/sample metric is per-sample latency: at batch 64 it amortizes the
// per-call overhead and the fused multiply-bias kernel across the batch,
// and is the number to compare against BenchmarkE5_Inference.
func BenchmarkE5_InferenceBatched(b *testing.B) {
	for _, rows := range []int{1, 16, 64, 256} {
		b.Run(fmt.Sprintf("rows%d", rows), func(b *testing.B) {
			net := readahead.NewModel(1)
			cls, err := readahead.NewFloat32Classifier(net)
			if err != nil {
				b.Fatal(err)
			}
			in := batchFeatures(rows)
			classes := make([]int, rows)
			cls.PredictBatch(in, rows, classes)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cls.PredictBatch(in, rows, classes)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*rows), "ns/sample")
		})
	}
}

// BenchmarkE5_FixedInferenceBatched measures the batched Q16.16
// fixed-point inference path at batch 64 (the kernelspace batch shape).
func BenchmarkE5_FixedInferenceBatched(b *testing.B) {
	const rows = 64
	net := readahead.NewModel(1)
	cls, err := readahead.NewFixedClassifier(net)
	if err != nil {
		b.Fatal(err)
	}
	in := batchFeatures(rows)
	classes := make([]int, rows)
	cls.PredictBatch(in, rows, classes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cls.PredictBatch(in, rows, classes)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*rows), "ns/sample")
}

// BenchmarkE5_TrainingIteration measures one online training iteration
// (paper: 51 µs).
func BenchmarkE5_TrainingIteration(b *testing.B) {
	net := readahead.NewModel(1)
	loss := nn.NewCrossEntropy()
	opt := nn.NewSGD(0.01, 0.99)
	batch := nn.NewMat(1, features.Count)
	// Targets are prebuilt so the loop measures the training step alone;
	// the step itself must be allocation-free.
	var targets [workload.NumClasses]nn.Target
	for c := range targets {
		targets[c] = nn.ClassTarget([]int{c})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.TrainBatch(batch, targets[i%workload.NumClasses], loss, opt)
	}
}

// BenchmarkE5_DataCollection measures the inline per-tracepoint cost
// (paper: 49 ns including normalization; here the ring push alone, with
// aggregation measured separately by BenchmarkE5_FeatureAggregation).
func BenchmarkE5_DataCollection(b *testing.B) {
	pipe, err := core.NewPipeline[features.Record](core.Config{BufferCapacity: 1 << 16},
		func([]features.Record, core.Mode) {})
	if err != nil {
		b.Fatal(err)
	}
	pipe.SetMode(core.ModeInference)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pipe.Collect(features.Record{Inode: 1, Offset: int64(i)})
		if i&4095 == 4095 {
			b.StopTimer()
			pipe.Flush()
			b.StartTimer()
		}
	}
}

// BenchmarkE5_FeatureAggregation measures the per-event normalization/
// aggregation work on the training thread.
func BenchmarkE5_FeatureAggregation(b *testing.B) {
	ext := features.NewExtractor()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ext.Add(features.Record{Inode: 1, Offset: int64(i % 100000)})
	}
}

// BenchmarkE8_TraceSpan measures the full decision-trace tax: one root
// span, four children with attributes, finish, and an arena record —
// everything tracing adds to a decision window beyond the work itself.
// The paper budgets ~49 ns for its per-event collection path; the whole
// per-DECISION trace (six span writes) must stay well under the 100 ns
// budget pinned by dtrace.TestTraceOverheadBudget. The derived
// trace_overhead_ns metric feeds scripts/bench_json.sh.
func BenchmarkE8_TraceSpan(b *testing.B) {
	a := dtrace.NewArena(1024)
	var tb dtrace.Builder
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := int64(i)
		tb.Start(a.NextID(), now)
		si := tb.Begin(dtrace.StageFeature, 0, now)
		tb.End(si, now+1)
		tb.SetValue(si, 50)
		si = tb.Begin(dtrace.StageInfer, 0, now+1)
		tb.End(si, now+2)
		tb.SetValue(si, 1)
		tb.SetAux(si, 7)
		si = tb.Begin(dtrace.StageApply, 0, now+2)
		tb.End(si, now+3)
		si = tb.Begin(dtrace.StageOutcome, 0, now+3)
		tb.End(si, now+4)
		a.Record(tb.Finish(now + 4))
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "trace_overhead_ns")
}

// BenchmarkE10_TimeSeriesTick measures one full time-series capture
// tick at the serving registry's shape (five counters, four populated
// histograms): counter deltas plus three integer quantiles per
// histogram into the keep-latest ring. This is the recorder goroutine's
// per-interval cost — at the default 1s interval it must be invisible
// next to the serving work, and it must not allocate. The budget is
// pinned by tsrec.TestTimeSeriesOverheadBudget; the derived ts_tick_ns
// metric feeds scripts/bench_json.sh.
func BenchmarkE10_TimeSeriesTick(b *testing.B) {
	reg := telemetry.NewRegistry()
	counters := []string{"c0", "c1", "c2", "c3", "c4"}
	hists := []string{"h0", "h1", "h2", "h3"}
	for _, n := range counters {
		reg.Counter(n).Add(12345)
	}
	rng := rand.New(rand.NewSource(10))
	for _, n := range hists {
		h := reg.Histogram(n)
		for i := 0; i < 10000; i++ {
			h.Observe(int64(rng.Intn(1 << 20)))
		}
	}
	rec, err := tsrec.New(reg, tsrec.Config{Capacity: 1024, Counters: counters, Hists: hists})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Tick(int64(i + 1))
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ts_tick_ns")
}

// BenchmarkE11_CoalescedServe measures the cross-connection coalesced
// serving loop end to end: an in-process server with a 100us gather
// window on a unix socket, 32 concurrent connections each streaming
// single-row Infer requests, every gathered batch executed as one fused
// PredictBatch. coalesced_ns_per_sample is wall-clock per served row
// across the whole fleet — the number EXPERIMENTS.md E11 compares
// against the uncoalesced serving hop, and the snapshot metric
// scripts/bench_json.sh records.
func BenchmarkE11_CoalescedServe(b *testing.B) {
	dir := b.TempDir()
	reg, err := mserve.OpenRegistry(filepath.Join(dir, "registry"))
	if err != nil {
		b.Fatal(err)
	}
	srv, err := mserve.NewServer(mserve.Config{
		Registry:       reg,
		MaxConns:       64,
		CoalesceWindow: 100 * time.Microsecond,
		CoalesceMax:    32, // the fleet size: full batches execute without waiting out the window
	})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	net := nn.NewNetwork(
		nn.NewLinear(4, 8, rng),
		nn.NewSigmoid(),
		nn.NewLinear(8, 4, rng),
	)
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		b.Fatal(err)
	}
	if _, err := srv.Deploy(mserve.KindNN, "bench", buf.Bytes()); err != nil {
		b.Fatal(err)
	}
	sock := filepath.Join(dir, "kml.sock")
	go func() {
		if err := srv.ListenAndServe("unix", sock); err != nil {
			b.Error(err)
		}
	}()
	for i := 0; i < 200; i++ {
		if _, err := os.Stat(sock); err == nil {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	b.Cleanup(func() { srv.Shutdown(5 * time.Second) })

	const fleet = 32
	clients := make([]*mserve.Client, fleet)
	for c := range clients {
		cl, err := mserve.Dial("unix", sock)
		if err != nil {
			b.Fatal(err)
		}
		defer cl.Close()
		if _, _, err := cl.Infer([]float64{0.1, 0.2, 0.3, 0.4}); err != nil {
			b.Fatal(err)
		}
		clients[c] = cl
	}
	b.ResetTimer()
	var wg sync.WaitGroup
	for c := range clients {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := clients[c]
			feats := []float64{0.3, 0.1, 0.7, 0.2}
			n := b.N / fleet
			if c < b.N%fleet {
				n++
			}
			for i := 0; i < n; i++ {
				if _, _, err := cl.Infer(feats); err != nil {
					b.Error(err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "coalesced_ns_per_sample")
}

// BenchmarkE12_BlackboxRecord measures one flight-recorder append at
// the sampler's typical payload size (a 256-byte metrics snapshot):
// header encode, CRC over header and payload, copy into the in-memory
// ring, pad zeroing. This is the cost every capture pays per record
// while the serving path runs; it must not allocate and must stay
// under blackbox.RecordOverheadBudgetNanos (pinned by
// blackbox.TestBlackboxOverheadBudget; blackbox_record_ns feeds
// scripts/bench_json.sh).
func BenchmarkE12_BlackboxRecord(b *testing.B) {
	bb, err := blackbox.Open(blackbox.Config{
		Path: filepath.Join(b.TempDir(), "bench.blackbox"),
		Size: 4 << 20,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer bb.Close()
	payload := make([]byte, 256)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !bb.Record(blackbox.KindMetrics, int64(i+1), payload) {
			b.Fatal("record dropped")
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "blackbox_record_ns")
}

// BenchmarkAblation_InferencePrecision compares the three matrix
// precisions the paper supports (double, float, and integer/fixed-point)
// on the same trained readahead model.
func BenchmarkAblation_InferencePrecision(b *testing.B) {
	net := readahead.NewModel(1)
	in := make([]float64, features.Count)
	b.Run("float64", func(b *testing.B) {
		cls := readahead.NewNNClassifier(net)
		cls.Predict(in)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cls.Predict(in)
		}
	})
	b.Run("float32", func(b *testing.B) {
		cls, err := readahead.NewFloat32Classifier(net)
		if err != nil {
			b.Fatal(err)
		}
		cls.Predict(in)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cls.Predict(in)
		}
	})
	b.Run("fixed-q16", func(b *testing.B) {
		cls, err := readahead.NewFixedClassifier(net)
		if err != nil {
			b.Fatal(err)
		}
		cls.Predict(in)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cls.Predict(in)
		}
	})
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblation_ClassifyVsOracle compares the trained classifier
// against an oracle that always picks the per-workload best fixed value,
// bounding how much of the attainable gain the model captures.
func BenchmarkAblation_ClassifyVsOracle(b *testing.B) {
	nnB, _ := bundles(b)
	for i := 0; i < b.N; i++ {
		base, err := bench.RunVanilla(benchSSD(), workload.ReadRandom, 3)
		if err != nil {
			b.Fatal(err)
		}
		oracle, err := bench.RunFixedRA(benchSSD(), workload.ReadRandom, 3, 8)
		if err != nil {
			b.Fatal(err)
		}
		tuned, _, err := bench.RunKML(benchSSD(), workload.ReadRandom, 3, nnB)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(tuned.OpsPerSec()/base.OpsPerSec(), "kml_speedup")
		b.ReportMetric(oracle.OpsPerSec()/base.OpsPerSec(), "oracle_speedup")
		b.ReportMetric(tuned.OpsPerSec()/oracle.OpsPerSec(), "kml_vs_oracle")
	}
}

// BenchmarkAblation_AsyncVsSyncCollection compares pushing samples through
// the lock-free pipeline (the paper's design) against calling the feature
// extractor inline on the I/O path — the latency the ring buffer keeps off
// the hot path.
func BenchmarkAblation_AsyncVsSyncCollection(b *testing.B) {
	b.Run("async-ring", func(b *testing.B) {
		pipe, err := core.NewPipeline[features.Record](core.Config{BufferCapacity: 1 << 16},
			func([]features.Record, core.Mode) {})
		if err != nil {
			b.Fatal(err)
		}
		pipe.SetMode(core.ModeTraining)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pipe.Collect(features.Record{Inode: 1, Offset: int64(i)})
			if i&4095 == 4095 {
				b.StopTimer()
				pipe.Flush()
				b.StartTimer()
			}
		}
	})
	b.Run("inline", func(b *testing.B) {
		ext := features.NewExtractor()
		norm := features.Normalizer{}
		buf := make([]float64, features.Count)
		net := readahead.NewModel(1)
		cls := readahead.NewNNClassifier(net)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ext.Add(features.Record{Inode: 1, Offset: int64(i)})
			if i&4095 == 4095 {
				// Inline windows pay normalization + inference on the
				// I/O path itself.
				norm.ApplyInto(buf, ext.Emit(256))
				cls.Predict(buf)
			}
		}
	})
}

// BenchmarkAblation_Baselines compares the vanilla heuristic baseline with
// an fadvise(RANDOM)-style static hint on the random workload: the static
// hint captures most of the gain when the workload is known a priori; KML's
// contribution is choosing it automatically and per second.
func BenchmarkAblation_Baselines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		vanilla, err := bench.RunVanilla(benchSSD(), workload.ReadRandom, 3)
		if err != nil {
			b.Fatal(err)
		}
		static, err := bench.RunFixedRA(benchSSD(), workload.ReadRandom, 3, blockdev.SectorsPerPage)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(static.OpsPerSec()/vanilla.OpsPerSec(), "static_hint_speedup")
	}
}

// BenchmarkAblation_PerFileVsDevice compares the two tuning surfaces of
// the paper's Figure 1: one device-wide readahead setting (the Tuner)
// versus per-file ra_pages updates (the FileTuner). Per-file tuning can
// give the random-access table file a minimal window while compaction
// streams keep large ones.
func BenchmarkAblation_PerFileVsDevice(b *testing.B) {
	nnB, _ := bundles(b)
	run := func(b *testing.B, perFile bool) float64 {
		env, err := sim.NewEnv(benchSSD())
		if err != nil {
			b.Fatal(err)
		}
		var tick func(time.Duration)
		if perFile {
			ft, err := readahead.NewFileTuner(env.Cache, env.Dev, nnB.Model, nnB.Norm, readahead.FileTunerConfig{})
			if err != nil {
				b.Fatal(err)
			}
			env.Tracer.Register(ft.Hook())
			tick = ft.MaybeTick
		} else {
			dt, err := readahead.NewTuner(env.Dev, nnB.Model, nnB.Norm, readahead.TunerConfig{})
			if err != nil {
				b.Fatal(err)
			}
			env.Tracer.Register(dt.Hook())
			tick = dt.MaybeTick
		}
		runner := env.NewRunner(workload.MixGraph)
		for env.Clk.Now() < 3*time.Second {
			if err := runner.Step(); err != nil {
				b.Fatal(err)
			}
			tick(env.Clk.Now())
		}
		return float64(runner.Ops()) / env.Clk.Seconds()
	}
	for i := 0; i < b.N; i++ {
		device := run(b, false)
		file := run(b, true)
		b.ReportMetric(device, "device_ops/vsec")
		b.ReportMetric(file, "perfile_ops/vsec")
		b.ReportMetric(file/device, "perfile_vs_device")
	}
}

// BenchmarkAblation_WindowLength varies the tuner's decision interval
// around the paper's one-second choice.
func BenchmarkAblation_WindowLength(b *testing.B) {
	nnB, _ := bundles(b)
	for _, window := range []time.Duration{250 * time.Millisecond, time.Second, 4 * time.Second} {
		b.Run(window.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				env, err := sim.NewEnv(benchSSD())
				if err != nil {
					b.Fatal(err)
				}
				tuner, err := readahead.NewTuner(env.Dev, nnB.Model, nnB.Norm,
					readahead.TunerConfig{Window: window})
				if err != nil {
					b.Fatal(err)
				}
				env.Tracer.Register(tuner.Hook())
				runner := env.NewRunner(workload.MixGraph)
				deadline := 3 * time.Second
				for env.Clk.Now() < deadline {
					if err := runner.Step(); err != nil {
						b.Fatal(err)
					}
					tuner.MaybeTick(env.Clk.Now())
				}
				b.ReportMetric(float64(runner.Ops())/env.Clk.Seconds(), "ops/vsec")
			}
		})
	}
}
