// Workload classification: the readahead model's offline development
// workflow (§3.3/§4 of the paper) on a small simulated testbed.
//
//	go run ./examples/workload-classify
//
// It collects labeled tracepoint windows by running the four training
// workloads on the simulated NVMe device, prints the Pearson
// feature-correlation report the authors used for feature selection,
// validates with k-fold cross-validation (paper: 95.5% at k=10), and
// compares the neural network against the decision-tree model family.
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/blockdev"
	"repro/internal/features"
	"repro/internal/readahead"
	"repro/internal/sim"
)

func main() {
	// A small environment keeps this example under a minute.
	cfg := sim.Config{Profile: blockdev.NVMe(), Keys: 8000, CachePages: 640, Seed: 7}

	fmt.Println("collecting labeled windows (4 workloads × {8,64,256,1024} sectors)...")
	raw, labels, err := readahead.CollectDataset(cfg, readahead.DatasetConfig{SecondsPerRun: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d one-second windows\n\n", len(raw))

	corr, err := features.CorrelationReport(raw, labels)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Pearson correlation of candidate features with the class label:")
	names := features.Names()
	selected := map[int]bool{}
	for _, s := range features.Selected {
		selected[s] = true
	}
	for i, c := range corr {
		mark := " "
		if selected[i] {
			mark = "*"
		}
		fmt.Printf("  %s %-24s %+.3f\n", mark, names[i], c)
	}
	fmt.Println("  (* = selected as model input)")
	fmt.Println()

	accs := readahead.KFoldCV(raw, labels, 5, readahead.TrainConfig{Seed: 7})
	fmt.Printf("neural network, 5-fold CV: mean accuracy %.1f%% (paper: 95.5%% at k=10)\n",
		readahead.Mean(accs)*100)

	// Train the final models on the full dataset and compare families.
	norm := features.FitNormalizer(raw)
	normed := make([]features.Vector, len(raw))
	for i, v := range raw {
		normed[i] = norm.Apply(v)
	}
	net := readahead.NewModel(7)
	readahead.TrainModel(net, normed, labels, readahead.TrainConfig{Seed: 7})
	nnAcc := readahead.Evaluate(readahead.NewNNClassifier(net), normed, labels)

	tree, err := readahead.TrainTree(normed, labels)
	if err != nil {
		log.Fatal(err)
	}
	treeAcc := readahead.Evaluate(tree, normed, labels)

	fixed, err := readahead.NewFixedClassifier(net)
	if err != nil {
		log.Fatal(err)
	}
	fixedAcc := readahead.Evaluate(fixed, normed, labels)

	fmt.Println("\ntraining-set accuracy by model family:")
	fmt.Printf("  neural network            %.1f%%\n", nnAcc*100)
	fmt.Printf("  decision tree             %.1f%% (%d nodes, depth %d)\n",
		treeAcc*100, tree.Tree().Nodes(), tree.Tree().Depth())
	fmt.Printf("  quantized NN (Q16.16)     %.1f%%\n", fixedAcc*100)
	_ = bench.Bundle{} // examples share the bench types for further runs
}
