// Quickstart: build, train, validate, save, load, and quantize a KML
// neural network — the §2 library workflow in ~100 lines.
//
//	go run ./examples/quickstart
//
// It trains a small classifier on a synthetic two-moons-style problem
// using the paper's optimizer (SGD, lr=0.01, momentum=0.99), saves it in
// the KML model file format, reloads it (the "deploy into the kernel"
// step), and compiles it to fixed-point Q16.16 inference for FPU-less
// contexts.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"path/filepath"

	"repro/internal/nn"
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// Synthetic dataset: two interleaved half-circles, 2 features, 2 classes.
	const n = 400
	x := nn.NewMat(n, 2)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		class := i % 2
		angle := rng.Float64() * math.Pi
		r := 1.0 + rng.NormFloat64()*0.1
		if class == 0 {
			x.Set(i, 0, r*math.Cos(angle))
			x.Set(i, 1, r*math.Sin(angle))
		} else {
			x.Set(i, 0, 1-r*math.Cos(angle))
			x.Set(i, 1, 0.5-r*math.Sin(angle))
		}
		y[i] = class
	}

	// The paper's readahead architecture shape: linear layers joined by
	// sigmoid activations.
	net := nn.NewNetwork(
		nn.NewLinear(2, 16, rng), nn.NewSigmoid(),
		nn.NewLinear(16, 16, rng), nn.NewSigmoid(),
		nn.NewLinear(16, 2, rng),
	)
	fmt.Printf("model: %s (%d params, %d bytes)\n", net, net.ParamCount(), net.ParamBytes())

	loss := nn.NewCrossEntropy()
	opt := nn.NewSGD(0.01, 0.99) // the paper's optimizer settings
	for epoch := 0; epoch <= 500; epoch++ {
		lv := net.TrainBatch(x, nn.ClassTarget(y), loss, opt)
		if epoch%100 == 0 {
			fmt.Printf("epoch %3d  loss %.4f  accuracy %.1f%%\n", epoch, lv, accuracy(net, x, y)*100)
		}
	}

	// Save in the KML model file format and reload — the user-space-train,
	// kernel-deploy workflow of §3.3.
	path := filepath.Join(os.TempDir(), "quickstart.kml")
	if err := net.SaveFile(path); err != nil {
		log.Fatal(err)
	}
	loaded, err := nn.LoadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saved and reloaded %s: accuracy %.1f%%\n", path, accuracy(loaded, x, y)*100)

	// Compile to integer-only inference (for kernels without FPU access).
	fixed, err := nn.CompileFixed(loaded)
	if err != nil {
		log.Fatal(err)
	}
	agree := 0
	var buf nn.PredictBuffer
	for i := 0; i < n; i++ {
		if fixed.Predict(x.Row(i)) == loaded.Predict(x.Row(i), &buf) {
			agree++
		}
	}
	fmt.Printf("fixed-point (Q16.16) model: %d bytes, agrees with float on %.1f%% of inputs\n",
		fixed.ParamBytes(), float64(agree)/float64(n)*100)
}

func accuracy(net *nn.Network, x *nn.Mat, y []int) float64 {
	out := net.Forward(x)
	correct := 0
	for i, want := range y {
		if out.ArgMaxRow(i) == want {
			correct++
		}
	}
	return float64(correct) / float64(len(y))
}
