// Online (in-kernel-style) training: §3.3 of the paper argues for training
// *inside* the OS — "we also tried training the same neural networks
// directly in the kernel without having separate data collection... both
// the in-kernel trained readahead model and the user-space one performed
// well."
//
//	go run ./examples/online-training
//
// This example reproduces that mode: tracepoints stream through the KML
// pipeline's asynchronous training thread (a real goroutine here, fed by
// the lock-free ring), which aggregates windows, normalizes them with
// running statistics, and performs one SGD iteration per window — all
// while the workload keeps running. The pipeline is then switched from
// training to inference mode (§3.3: "one can switch between training and
// inference modes as needed") and evaluated on fresh windows from every
// workload.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync/atomic"
	"time"

	"repro/internal/blockdev"
	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/nn"
	"repro/internal/readahead"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// onlineTrainer lives on the pipeline's training thread: it owns the
// extractor, running normalization statistics, and the network.
type onlineTrainer struct {
	ext         *features.Extractor
	norm        [features.NumCandidates]stats.Running
	calibrating atomic.Bool // phase 0: gather normalization stats only
	net         *nn.Network
	loss        *nn.CrossEntropy
	opt         *nn.SGD
	batch       *nn.Mat
	label       atomic.Int32 // set by the harness: the phase's ground truth
	windowSize  uint64
	iterations  int
	correct     int
	predicted   int
	confusion   [workload.NumClasses][workload.NumClasses]int
	// Replay buffer: online training sees long single-class stretches, so
	// training only on the newest window makes the model chase the current
	// phase and forget the rest (it ends up perpetually one phase behind).
	// Mixing each update with a few replayed samples — the standard
	// continual-learning remedy — restores i.i.d.-like updates.
	replayX []features.Vector
	replayY []int
	rng     *rand.Rand
}

func newOnlineTrainer(seed int64, windowSize uint64) *onlineTrainer {
	return &onlineTrainer{
		ext:  features.NewExtractor(),
		rng:  rand.New(rand.NewSource(seed)),
		net:  readahead.NewModel(seed),
		loss: nn.NewCrossEntropy(),
		// Online updates use a gentler step than the paper's offline
		// minibatch settings; the replay mix supplies the variance
		// reduction that shuffled epochs provide offline.
		opt:        nn.NewSGD(0.005, 0.9),
		batch:      nn.NewMat(1, features.Count),
		windowSize: windowSize,
	}
}

// handle consumes drained samples on the training thread.
func (o *onlineTrainer) handle(batch []features.Record, mode core.Mode) {
	for _, r := range batch {
		o.ext.Add(r)
		if o.ext.Events() < o.windowSize {
			continue
		}
		raw := o.ext.Emit(256)
		if o.calibrating.Load() {
			// Phase 0: fit the Z-score statistics, as the paper fits its
			// normalizer before training.
			for i := range raw {
				o.norm[i].Add(raw[i])
			}
			continue
		}
		normed := o.normalize(raw)
		features.SelectInto(o.batch.Row(0), normed)
		label := int(o.label.Load())
		switch mode {
		case core.ModeTraining:
			o.trainReplay(normed, label)
			o.iterations++
		case core.ModeInference:
			o.predicted++
			var buf nn.PredictBuffer
			got := o.net.Predict(o.batch.Row(0), &buf)
			o.confusion[label][got]++
			if got == label {
				o.correct++
			}
		}
	}
}

// trainReplay performs one online update: the fresh window plus three
// samples replayed from the reservoir.
const replayCap = 256

func (o *onlineTrainer) trainReplay(normed features.Vector, label int) {
	// Reservoir-sample into the replay buffer.
	if len(o.replayX) < replayCap {
		o.replayX = append(o.replayX, normed)
		o.replayY = append(o.replayY, label)
	} else if j := o.rng.Intn(o.iterations + 1); j < replayCap {
		o.replayX[j] = normed
		o.replayY[j] = label
	}
	// Several replay-heavy updates per window: the asynchronous training
	// thread has idle budget between windows, and single-pass online SGD
	// underfits the noisy real stream.
	const (
		mix     = 8
		updates = 4
	)
	batch := nn.NewMat(mix, features.Count)
	labels := make([]int, mix)
	for u := 0; u < updates; u++ {
		features.SelectInto(batch.Row(0), normed)
		labels[0] = label
		for i := 1; i < mix; i++ {
			j := o.rng.Intn(len(o.replayX))
			features.SelectInto(batch.Row(i), o.replayX[j])
			labels[i] = o.replayY[j]
		}
		o.net.TrainBatch(batch, nn.ClassTarget(labels), o.loss, o.opt)
	}
}

func (o *onlineTrainer) normalize(raw features.Vector) features.Vector {
	var out features.Vector
	for i, x := range raw {
		z := stats.ZScore{Mean: o.norm[i].Mean(), StdDev: o.norm[i].StdDev()}
		v := z.Apply(x)
		if v > 3 {
			v = 3
		}
		if v < -3 {
			v = -3
		}
		out[i] = v
	}
	return out
}

func main() {
	cfg := sim.Config{Profile: blockdev.NVMe(), Keys: 6000, CachePages: 480, Seed: 21}
	trainer := newOnlineTrainer(21, 4096)
	pipe, err := core.NewPipeline[features.Record](
		core.Config{BufferCapacity: 1 << 16},
		trainer.handle,
	)
	if err != nil {
		log.Fatal(err)
	}
	pipe.SetMode(core.ModeTraining)
	if err := pipe.Start(); err != nil {
		log.Fatal(err)
	}
	defer pipe.Stop()

	// Online training sees samples in workload order, so phases rotate
	// quickly: long single-class stretches with momentum 0.99 would make
	// the model forget earlier classes (the online-learning analogue of
	// shuffling minibatches).
	runPhases := func(label string, rotations int, phase time.Duration) {
		for rot := 0; rot < rotations; rot++ {
			for _, kind := range workload.TrainingKinds() {
				env, err := sim.NewEnv(cfg)
				if err != nil {
					log.Fatal(err)
				}
				env.Tracer.Register(func(ev trace.Event) {
					pipe.Collect(features.Record{
						Inode:  ev.Inode,
						Offset: ev.Offset,
						Time:   ev.Time,
						Write:  ev.Point == trace.WritebackDirtyPage,
					})
				})
				trainer.label.Store(int32(kind.Class()))
				runner := env.NewRunner(kind)
				if err := runner.RunFor(phase); err != nil {
					log.Fatal(err)
				}
				// Let the asynchronous thread drain before switching labels.
				for pipe.BufferLen() > 0 {
					time.Sleep(time.Millisecond)
				}
			}
		}
		fmt.Printf("%s: %d online training iterations, %d samples dropped\n",
			label, trainer.iterations, pipe.Dropped())
	}

	fmt.Println("phase 0: calibrating normalization statistics...")
	trainer.calibrating.Store(true)
	runPhases("calibration", 1, 2*time.Second)
	trainer.calibrating.Store(false)

	fmt.Println("phase 1: online training while workloads run (async thread)...")
	runPhases("training", 16, 300*time.Millisecond)

	fmt.Println("phase 2: switch pipeline to inference mode and evaluate...")
	pipe.SetMode(core.ModeInference)
	runPhases("inference", 1, 2*time.Second)

	if trainer.predicted == 0 {
		log.Fatal("no inference windows observed")
	}
	fmt.Printf("online-trained model accuracy on live windows: %.1f%% (%d windows)\n",
		float64(trainer.correct)/float64(trainer.predicted)*100, trainer.predicted)
	fmt.Println("confusion (rows = truth, cols = predicted):")
	for c := range trainer.confusion {
		fmt.Printf("  %-22s %v\n", workload.TrainingKinds()[c], trainer.confusion[c])
	}
}
