// Readahead tuning: the full closed loop of the paper's case study on a
// small simulated testbed.
//
//	go run ./examples/readahead-tuning
//
// It trains the workload classifier on the NVMe device model (training
// workloads only), then deploys it against the never-seen mixgraph
// workload: tracepoints stream through the lock-free KML pipeline, a
// feature window is classified once per second, and the predicted class
// drives the device readahead setting. The example prints the per-second
// decisions and the resulting speedup over the untouched system.
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/blockdev"
	"repro/internal/readahead"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	trainCfg := sim.Config{Profile: blockdev.NVMe(), Keys: 8000, CachePages: 640, Seed: 11}
	runCfg := trainCfg // deploy on the same device class here; see kml-table2 for SSD

	fmt.Println("training classifier (4 training workloads on NVMe)...")
	bundle, _, _, err := bench.TrainNNBundle(trainCfg,
		readahead.DatasetConfig{SecondsPerRun: 8},
		readahead.TrainConfig{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}

	const seconds = 8
	fmt.Printf("\nrunning mixgraph (never seen in training) for %d virtual seconds...\n", seconds)
	base, err := bench.RunVanilla(runCfg, workload.MixGraph, seconds)
	if err != nil {
		log.Fatal(err)
	}
	tuned, decisions, err := bench.RunKML(runCfg, workload.MixGraph, seconds, bundle)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nper-second tuning decisions:")
	classNames := [workload.NumClasses]string{"readseq", "readrandom", "readreverse", "readrandomwriterandom"}
	for i, d := range decisions {
		fmt.Printf("  t=%2ds  predicted=%-22s readahead=%4d sectors  (%d tracepoints)\n",
			i+1, classNames[d.Class%len(classNames)], d.Sectors, d.Events)
	}

	fmt.Printf("\nvanilla:   %8.0f ops/sec (readahead fixed at %d sectors)\n",
		base.OpsPerSec(), blockdev.DefaultReadaheadSectors)
	fmt.Printf("KML-tuned: %8.0f ops/sec (%d ops, %d ring drops)\n",
		tuned.OpsPerSec(), tuned.Ops, tuned.Dropped)
	fmt.Printf("speedup:   %.2fx (the paper reports 1.51x for mixgraph on NVMe)\n",
		tuned.OpsPerSec()/base.OpsPerSec())
}
