// I/O admission: a LinnOS-style binary classifier built on KML.
//
//	go run ./examples/io-admission
//
// The paper's related-work section (§5) contrasts KML with the custom
// binary neural network LinnOS (OSDI '20) used to predict whether an I/O
// will be slow and reject it early. This example shows KML expressing that
// use case with its generic pieces — no custom layers: a
// two-linear-layer network with the binary-cross-entropy loss predicts,
// from the recent tracepoint window, whether the next point lookup will
// stall on the device (cache miss) or return from memory. A storage
// system could use the prediction to hedge or reroute the request.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/blockdev"
	"repro/internal/features"
	"repro/internal/nn"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// windowFeatures summarizes the last few seconds of tracepoint activity
// plus the instantaneous cache pressure, the signal an admission model
// would realistically have.
func collect(env *sim.Env, kind workload.Kind, seconds int) (x *nn.Mat, y []int, err error) {
	ext := features.NewExtractor()
	env.Tracer.Register(func(ev trace.Event) {
		ext.Add(features.Record{Inode: ev.Inode, Offset: ev.Offset, Time: ev.Time, Write: ev.Point == trace.WritebackDirtyPage})
	})
	runner := env.NewRunner(kind)
	type sample struct {
		feats [3]float64
		slow  int
	}
	var samples []sample
	start := env.Clk.Now()
	for s := 0; s < seconds*10; s++ { // 100ms windows
		deadline := start + time.Duration(s+1)*100*time.Millisecond
		for env.Clk.Now() < deadline {
			if err := runner.Step(); err != nil {
				return nil, nil, err
			}
		}
		before := env.Cache.Stats()
		devBefore := env.Dev.Stats()
		v := ext.Emit(env.Dev.ReadaheadSectors())
		// Probe: one lookup; was it slow (device) or fast (memory)?
		probeStart := env.Clk.Now()
		if _, _, err := env.DB.Get(workload.Key(int(env.Clk.Now()/777) % env.Cfg.Keys)); err != nil {
			return nil, nil, err
		}
		slow := 0
		if env.Dev.Stats().SyncReads > devBefore.SyncReads && env.Clk.Now() > probeStart {
			slow = 1
		}
		_ = before
		samples = append(samples, sample{
			feats: [3]float64{
				v[features.FeatEventCount] / 10000,
				v[features.FeatMeanAbsDelta] / 100,
				env.Cache.Stats().HitRate(),
			},
			slow: slow,
		})
	}
	x = nn.NewMat(len(samples), 3)
	y = make([]int, len(samples))
	for i, s := range samples {
		copy(x.Row(i), s.feats[:])
		y[i] = s.slow
	}
	return x, y, nil
}

func main() {
	cfg := sim.Config{Profile: blockdev.SATASSD(), Keys: 8000, CachePages: 640, Seed: 31}
	env, err := sim.NewEnv(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("collecting admission training data (readrandom, 100ms windows)...")
	x, y, err := collect(env, workload.ReadRandom, 12)
	if err != nil {
		log.Fatal(err)
	}
	slow := 0
	for _, v := range y {
		slow += v
	}
	fmt.Printf("dataset: %d probes, %d slow / %d fast\n", len(y), slow, len(y)-slow)

	rng := rand.New(rand.NewSource(31))
	net := nn.NewNetwork(nn.NewLinear(3, 8, rng), nn.NewSigmoid(), nn.NewLinear(8, 1, rng))
	loss := nn.NewBCE()
	opt := nn.NewSGD(0.05, 0.9)
	for epoch := 0; epoch < 400; epoch++ {
		net.TrainBatch(x, nn.ClassTarget(y), loss, opt)
	}

	// Evaluate on a fresh environment (different seed: unseen data).
	cfg.Seed = 32
	env2, err := sim.NewEnv(cfg)
	if err != nil {
		log.Fatal(err)
	}
	tx, ty, err := collect(env2, workload.ReadRandom, 6)
	if err != nil {
		log.Fatal(err)
	}
	out := net.Forward(tx)
	correct, predictedSlow := 0, 0
	for i := range ty {
		pred := 0
		if out.At(i, 0) > 0 { // logit > 0 ⇔ p > 0.5
			pred = 1
			predictedSlow++
		}
		if pred == ty[i] {
			correct++
		}
	}
	baseline := 0
	for _, v := range ty {
		baseline += v
	}
	if baseline < len(ty)-baseline {
		baseline = len(ty) - baseline
	}
	fmt.Printf("admission model accuracy on unseen run: %.1f%% (majority baseline %.1f%%)\n",
		float64(correct)/float64(len(ty))*100, float64(baseline)/float64(len(ty))*100)
	fmt.Printf("predicted slow: %d of %d probes\n", predictedSlow, len(ty))
}
