// Command kml-figure2 reproduces Figure 2 of the paper: a per-second
// timeline of RocksDB's mixgraph workload on the NVMe model, comparing
// vanilla and KML-tuned throughput and showing the readahead value the
// model selects each second (including the early fluctuations the paper
// discusses — the cache starts cold, so the first windows look different
// from steady state).
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/bench"
	"repro/internal/readahead"
)

func main() {
	quick := flag.Bool("quick", false, "8x smaller environment for a fast pass")
	trainSeconds := flag.Int("train-seconds", 20, "virtual seconds per training run")
	seconds := flag.Int("seconds", 30, "timeline length in virtual seconds")
	device := flag.String("device", "nvme", "device model: nvme or ssd")
	csvOut := flag.String("csv", "", "also write the series to this CSV file")
	seed := flag.Int64("seed", 1, "seed")
	flag.Parse()

	var cfg = bench.DefaultNVMeConfig(*seed)
	if *device == "ssd" {
		cfg = bench.DefaultSSDConfig(*seed)
	}
	trainCfg := bench.DefaultNVMeConfig(*seed) // the paper always trains on NVMe
	if *quick {
		cfg = bench.QuickConfig(cfg)
		trainCfg = bench.QuickConfig(trainCfg)
	}

	fmt.Println("training classifier on NVMe...")
	bundle, _, _, err := bench.TrainNNBundle(trainCfg,
		readahead.DatasetConfig{SecondsPerRun: *trainSeconds},
		readahead.TrainConfig{Seed: *seed})
	if err != nil {
		fatal(err)
	}
	res, err := bench.RunFigure2(cfg, *seconds, bundle)
	if err != nil {
		fatal(err)
	}
	res.Write(os.Stdout)

	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			fatal(err)
		}
		w := csv.NewWriter(f)
		w.Write([]string{"second", "vanilla_ops", "kml_ops", "kml_ra_sectors"})
		for _, p := range res.Points {
			w.Write([]string{
				strconv.Itoa(p.Second),
				strconv.FormatFloat(p.VanillaOps, 'f', 0, 64),
				strconv.FormatFloat(p.KMLOps, 'f', 0, 64),
				strconv.Itoa(p.RASectors),
			})
		}
		w.Flush()
		if err := w.Error(); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *csvOut)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
