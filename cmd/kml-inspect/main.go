// Command kml-inspect examines KML deployment artifacts: the network model
// file (.kml), the normalizer (.norm), and the decision tree (.dtree) that
// cmd/kml-train produces — the files a kernel module would load in the
// paper's deploy step. It prints architecture, parameter statistics, and
// memory footprints, and verifies the checksums by loading.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/dtree"
	"repro/internal/features"
	"repro/internal/nn"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: kml-inspect <file.kml|file.norm|file.dtree> ...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	exit := 0
	for _, path := range flag.Args() {
		if err := inspect(path); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			exit = 1
		}
	}
	os.Exit(exit)
}

func inspect(path string) error {
	switch {
	case strings.HasSuffix(path, ".norm"):
		return inspectNorm(path)
	case strings.HasSuffix(path, ".dtree"):
		return inspectTree(path)
	default:
		return inspectModel(path)
	}
}

func inspectModel(path string) error {
	net, err := nn.LoadFile(path)
	if err != nil {
		return err
	}
	fmt.Printf("%s: KML neural network (checksum OK)\n", path)
	fmt.Printf("  architecture:      %s\n", net)
	fmt.Printf("  inputs -> outputs: %d -> %d\n", net.InDim(), net.OutDim())
	fmt.Printf("  parameters:        %d (%d bytes as float64)\n", net.ParamCount(), net.ParamBytes())
	fmt.Printf("  inference scratch: %d bytes\n", net.InferenceScratchBytes())
	// Weight statistics per parameter tensor.
	for i, p := range net.Params() {
		var min, max, sum float64
		for j, v := range p.Data() {
			if j == 0 || v < min {
				min = v
			}
			if j == 0 || v > max {
				max = v
			}
			sum += v
		}
		n := float64(len(p.Data()))
		fmt.Printf("  tensor %d: %dx%d  min %+.4f  max %+.4f  mean %+.4f\n",
			i, p.Rows(), p.Cols(), min, max, sum/n)
	}
	if fx, err := nn.CompileFixed(net); err == nil {
		fmt.Printf("  fixed-point (Q16.16) size: %d bytes\n", fx.ParamBytes())
	}
	if f32, err := nn.CompileFloat32(net); err == nil {
		fmt.Printf("  float32 size:              %d bytes\n", f32.ParamBytes())
	}
	return nil
}

func inspectNorm(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	norm, err := features.LoadNormalizer(f)
	if err != nil {
		return err
	}
	fmt.Printf("%s: KML feature normalizer\n", path)
	names := features.Names()
	selected := map[int]bool{}
	for _, s := range features.Selected {
		selected[s] = true
	}
	for i, z := range norm.Z {
		mark := " "
		if selected[i] {
			mark = "*"
		}
		fmt.Printf("  %s %-24s mean %12.3f  stddev %12.3f\n", mark, names[i], z.Mean, z.StdDev)
	}
	fmt.Println("  (* = selected as model input)")
	return nil
}

func inspectTree(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	t, err := dtree.Load(f)
	if err != nil {
		return err
	}
	fmt.Printf("%s: KML decision tree (checksum OK)\n", path)
	fmt.Printf("  features: %d   classes: %d\n", t.Features(), t.Classes())
	fmt.Printf("  nodes:    %d   depth: %d\n", t.Nodes(), t.Depth())
	return nil
}
