// Command kml-trace pulls decision traces from a running kml-served and
// renders them as span trees with per-stage latency breakdowns — the
// operator's answer to "what did the model decide, how long did each
// stage take, and did it help?".
//
// Typical use:
//
//	kml-trace -addr /run/kml.sock                 # everything retained
//	kml-trace -addr /run/kml.sock -class 2        # decisions for class 2
//	kml-trace -addr /run/kml.sock -slow 5us       # slow decisions only
//	kml-trace -addr /run/kml.sock -since 10s      # recent decisions only
//	kml-trace -addr /run/kml.sock -id 42          # one trace by ID
//	kml-trace -addr /run/kml.sock -learn          # retrain history instead of traces
//	kml-trace -addr /run/kml.sock -probe 3        # send traced probes, render the
//	                                              # joined client→wire→server tree
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/dtrace"
	"repro/internal/mserve"
)

func main() {
	var (
		network = flag.String("network", "unix", "server network: unix or tcp")
		addr    = flag.String("addr", "kml-served.sock", "server address (socket path or host:port)")
		id      = flag.Uint64("id", 0, "show only the trace with this ID (0 = all)")
		class   = flag.Int("class", -1, "show only decisions for this class (-1 = all)")
		since   = flag.Duration("since", 0, "show only traces started within this window (0 = all)")
		slow    = flag.Duration("slow", 0, "show only traces at least this long end to end (0 = all)")
		learn   = flag.Bool("learn", false, "show the online-learning controller's retrain history instead of traces")
		probe   = flag.Int("probe", 0, "send N traced probe inferences and render the joined client→server trace trees")
	)
	flag.Parse()

	cl, err := mserve.Dial(*network, *addr)
	if err != nil {
		fatal(err)
	}
	defer cl.Close()
	if *learn {
		printLearn(cl)
		return
	}
	if *probe > 0 {
		runProbe(cl, *probe)
		return
	}
	traces, err := cl.Traces()
	if err != nil {
		fatal(err)
	}

	shown, complete := 0, 0
	byStage := make(map[dtrace.Stage][]int64)
	cutoff := int64(0)
	if *since > 0 {
		cutoff = time.Now().Add(-*since).UnixNano()
	}
	for i := range traces {
		tr := &traces[i]
		root := tr.Root()
		if *id != 0 && tr.ID != dtrace.TraceID(*id) {
			continue
		}
		if *class >= 0 && root.Value != int64(*class) {
			continue
		}
		if cutoff != 0 && root.Start < cutoff {
			continue
		}
		if *slow > 0 && root.Duration() < int64(*slow) {
			continue
		}
		printTrace(tr)
		shown++
		if tr.Complete() {
			complete++
		}
		for _, sp := range tr.Used() {
			byStage[sp.Stage] = append(byStage[sp.Stage], sp.Duration())
		}
	}
	printBreakdown(byStage)
	fmt.Printf("%d traces shown, %d complete (%d retained by server)\n",
		shown, complete, len(traces))
}

// runProbe exercises cross-process trace propagation live: it enables
// client-side tracing, sends n zero-feature probe inferences (each
// stamping its TraceID into the request frame), pulls the server's
// retained traces back, and renders each probe as ONE joined tree — the
// client's encode/wire/parse spans with the server's queue→parse→infer→
// encode subtree nested inside the wire span, matched by the identical
// TraceID recorded on both sides of the connection.
func runProbe(cl *mserve.Client, n int) {
	arena := dtrace.NewArena(n)
	cl.EnableTracing(arena)
	ok, version, inDim, err := cl.Health()
	if err != nil {
		fatal(err)
	}
	if !ok || inDim <= 0 {
		fatal(fmt.Errorf("no model deployed to probe (healthy=%v inDim=%d)", ok, inDim))
	}
	feats := make([]float64, inDim)
	for i := 0; i < n; i++ {
		if _, _, err := cl.Infer(feats); err != nil {
			fatal(fmt.Errorf("probe %d: %w", i, err))
		}
	}
	server, err := cl.Traces()
	if err != nil {
		fatal(err)
	}
	byID := make(map[dtrace.TraceID]*dtrace.Trace, len(server))
	for i := range server {
		byID[server[i].ID] = &server[i]
	}

	joined := 0
	for _, ctr := range arena.Snapshot() {
		root := ctr.Root()
		srv := byID[ctr.ID]
		tag := "client only (server did not retain the trace)"
		if srv != nil {
			tag = "joined client↔server, identical TraceID"
			joined++
		}
		fmt.Printf("trace %d  %s  %s  v%d  %s\n",
			ctr.ID, time.Unix(0, root.Start).Format("15:04:05.000000"),
			fmtDur(root.Duration()), version, tag)
		spans := ctr.Used()
		for si := 1; si < len(spans); si++ {
			sp := spans[si]
			conn := "├─"
			if si == len(spans)-1 {
				conn = "└─"
			}
			fmt.Printf("  %s %-10s %8s  %s\n", conn, sp.Stage, fmtDur(sp.Duration()), spanDetail(sp))
			if sp.Stage == dtrace.StageWire && srv != nil {
				sroot := srv.Root()
				fmt.Printf("  │   └─ %-10s %8s  server  %s\n",
					"server", fmtDur(sroot.Duration()), spanDetail(*sroot))
				sspans := srv.Used()
				for ssi := 1; ssi < len(sspans); ssi++ {
					sconn := "├─"
					if ssi == len(sspans)-1 {
						sconn = "└─"
					}
					fmt.Printf("  │      %s %-10s %8s  %s\n",
						sconn, sspans[ssi].Stage, fmtDur(sspans[ssi].Duration()), spanDetail(sspans[ssi]))
				}
			}
		}
	}
	fmt.Printf("%d probes sent, %d joined across the wire\n", n, joined)
	if joined < n {
		os.Exit(1)
	}
}

// printLearn renders the MsgLearnStatus surface: the controller's live
// counters plus one line per retrain cycle in its flight recorder.
func printLearn(cl *mserve.Client) {
	st, err := cl.LearnStatus()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("learn state=%s retrains=%d deploys=%d commits=%d rollbacks=%d fires=%d examples=%d v%d\n",
		mserve.LearnStateName(st.State), st.Retrains, st.Deploys, st.Commits,
		st.Rollbacks, st.TriggerFires, st.Examples, st.LastVersion)
	for _, e := range st.Events {
		fmt.Printf("retrain v%-3d %s  %s  examples=%d train=%s baseline=%dpm canary=%dpm shift=%+.2fz churn=%dpm\n",
			e.Version, time.Unix(0, int64(e.TimeNanos)).Format("15:04:05.000"),
			mserve.RetrainOutcomeName(e.Outcome), e.Examples,
			time.Duration(e.DurationNanos).Round(time.Millisecond),
			e.BaselinePM, e.CanaryPM, float64(e.MaxShiftMZ)/1000, e.ChurnPM)
	}
	fmt.Printf("%d retrain events\n", len(st.Events))
}

// printTrace renders one trace as a span tree. Children of span i carry
// Parent == i+1 (the wire format's 1-based parent index).
func printTrace(tr *dtrace.Trace) {
	root := tr.Root()
	fmt.Printf("trace %d  %s  %s  %s\n",
		tr.ID, time.Unix(0, root.Start).Format("15:04:05.000000"),
		fmtDur(root.Duration()), spanDetail(*root))
	printChildren(tr, 1, "  ")
}

func printChildren(tr *dtrace.Trace, parent uint8, indent string) {
	spans := tr.Used()
	// Find the children of `parent` to know which connector to draw.
	last := -1
	for i := range spans {
		if i > 0 && spans[i].Parent == parent {
			last = i
		}
	}
	for i := range spans {
		if i == 0 || spans[i].Parent != parent {
			continue
		}
		conn := "├─"
		if i == last {
			conn = "└─"
		}
		fmt.Printf("%s%s %-10s %8s  %s\n",
			indent, conn, spans[i].Stage, fmtDur(spans[i].Duration()), spanDetail(spans[i]))
		printChildren(tr, uint8(i+1), indent+"   ")
	}
}

// spanDetail renders a span's Value/Aux using the stage's documented
// attribute semantics (see dtrace.Span).
func spanDetail(sp dtrace.Span) string {
	switch sp.Stage {
	case dtrace.StageDecision:
		if sp.Value < 0 {
			return fmt.Sprintf("batch rows=%d", sp.Aux)
		}
		return fmt.Sprintf("class=%d", sp.Value)
	case dtrace.StageFeature:
		return fmt.Sprintf("events=%d", sp.Value)
	case dtrace.StageNormalize:
		return fmt.Sprintf("nfeat=%d", sp.Value)
	case dtrace.StageInfer:
		if sp.Value < 0 {
			return fmt.Sprintf("batch v%d", sp.Aux)
		}
		return fmt.Sprintf("class=%d v%d", sp.Value, sp.Aux)
	case dtrace.StageApply:
		return fmt.Sprintf("readahead %d<-%d sectors", sp.Value, sp.Aux)
	case dtrace.StageOutcome:
		if sp.Aux < 0 {
			return "hit rate unknown"
		}
		return fmt.Sprintf("hit rate %dpm (%+dpm)", sp.Aux, sp.Value)
	case dtrace.StageParse, dtrace.StageEncode:
		return fmt.Sprintf("bytes=%d", sp.Value)
	case dtrace.StageQueue:
		return fmt.Sprintf("delay=%s", fmtDur(sp.Value))
	case dtrace.StageClient:
		if sp.Value < 0 {
			return fmt.Sprintf("batch rows=%d", sp.Aux)
		}
		return fmt.Sprintf("class=%d", sp.Value)
	case dtrace.StageWire:
		return fmt.Sprintf("req=%dB resp=%dB", sp.Aux, sp.Value)
	}
	return fmt.Sprintf("v=%d aux=%d", sp.Value, sp.Aux)
}

// printBreakdown summarizes per-stage latency over the shown traces.
func printBreakdown(byStage map[dtrace.Stage][]int64) {
	stages := make([]dtrace.Stage, 0, len(byStage))
	for st := range byStage {
		stages = append(stages, st)
	}
	if len(stages) == 0 {
		return
	}
	sort.Slice(stages, func(i, j int) bool { return stages[i] < stages[j] })
	fmt.Println("stage breakdown:")
	for _, st := range stages {
		ds := byStage[st]
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		var sum int64
		for _, d := range ds {
			sum += d
		}
		fmt.Printf("  %-10s n=%-5d p50=%-10s max=%-10s total=%s\n",
			st, len(ds), fmtDur(ds[len(ds)/2]), fmtDur(ds[len(ds)-1]), fmtDur(sum))
	}
}

func fmtDur(ns int64) string {
	if ns < 0 {
		return "?"
	}
	return time.Duration(ns).String()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
