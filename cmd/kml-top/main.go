// Command kml-top is the live serving console: it polls a running
// kml-served for its captured metric time series (MsgTimeSeries), the
// telemetry snapshot (MsgMetrics), and the online-learning status
// (MsgLearnStatus), and renders a compact top-style frame — throughput,
// latency quantiles with sparklines, queueing, drift, and retrain state
// — refreshing in place until interrupted.
//
// Typical use:
//
//	kml-top -addr /run/kml.sock                   # live console, 1s refresh
//	kml-top -addr /run/kml.sock -once             # one frame and exit
//	kml-top -addr /run/kml.sock -raw              # machine-readable point dump
//	kml-top -from kml.blackbox                    # replay an archived capture
//	kml-top -from series.bin -raw                 # dump an archived capture
//
// -from replays a file instead of a live socket: either a black-box
// flight-recorder file (recovered and merged, see kml-postmortem) or a
// raw binary series as emitted by `kml-postmortem -raw` — the operator
// "scrubs" a dead server's final minute through the same renderer the
// live console uses.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/blackbox"
	"repro/internal/mserve"
	"repro/internal/telemetry/tsrec"
)

func main() {
	var (
		network  = flag.String("network", "unix", "server network: unix or tcp")
		addr     = flag.String("addr", "kml-served.sock", "server address (socket path or host:port)")
		interval = flag.Duration("interval", time.Second, "refresh period")
		once     = flag.Bool("once", false, "render one frame and exit")
		raw      = flag.Bool("raw", false, "dump the raw time-series points (one line per point) and exit")
		from     = flag.String("from", "", "replay a time-series file (black-box or raw series) instead of a live socket")
	)
	flag.Parse()

	if *from != "" {
		ts, err := loadSeriesFile(*from)
		if err != nil {
			fatal(err)
		}
		if *raw {
			dumpSeries(ts)
			return
		}
		fmt.Printf("kml-top  (from %s)\n", *from)
		renderSeries(os.Stdout, ts)
		fmt.Printf("series  %d points @ %s\n", len(ts.Points), time.Duration(ts.IntervalNanos))
		return
	}

	cl, err := mserve.Dial(*network, *addr)
	if err != nil {
		fatal(err)
	}
	defer cl.Close()

	if *raw {
		ts, err := cl.TimeSeries()
		if err != nil {
			fatal(err)
		}
		dumpSeries(ts)
		return
	}
	if *once {
		if err := renderFrame(os.Stdout, cl, false); err != nil {
			fatal(err)
		}
		return
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	for {
		if err := renderFrame(os.Stdout, cl, true); err != nil {
			fatal(err)
		}
		select {
		case <-sigs:
			fmt.Println()
			return
		case <-tick.C:
		}
	}
}

// loadSeriesFile reads an archived time series: a black-box file
// (sniffed by magic, recovered with the same torn-tolerant scan
// kml-postmortem uses, time-series records merged) or a raw binary
// series in tsrec's canonical wire encoding.
func loadSeriesFile(path string) (tsrec.Series, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return tsrec.Series{}, err
	}
	if bytes.HasPrefix(data, []byte("KMLBBOX1")) {
		res, err := blackbox.Scan(data)
		if err != nil {
			return tsrec.Series{}, err
		}
		ts, skipped := blackbox.MergeTimeSeries(res.Records)
		if res.Torn > 0 || skipped > 0 {
			fmt.Fprintf(os.Stderr, "kml-top: %s: %d torn records, %d unparsable series records skipped\n",
				path, res.Torn, skipped)
		}
		return ts, nil
	}
	ts, err := tsrec.ParseSeries(data)
	if err != nil {
		return tsrec.Series{}, fmt.Errorf("%s: neither a black-box file nor a raw series: %w", path, err)
	}
	return ts, nil
}

// dumpSeries prints the captured points as plain integers — one line
// per point: timestamp, then every counter delta, then
// count/p50/p95/p99 per histogram. The smoke test greps this for
// non-empty, monotonic capture.
func dumpSeries(ts tsrec.Series) {
	fmt.Printf("interval_ns %d\n", ts.IntervalNanos)
	fmt.Printf("counters %s\n", strings.Join(ts.Counters, " "))
	fmt.Printf("hists %s\n", strings.Join(ts.Hists, " "))
	for i := range ts.Points {
		p := &ts.Points[i]
		fmt.Printf("point %d", p.TimeNanos)
		for c := range ts.Counters {
			fmt.Printf(" %d", p.Deltas[c])
		}
		for h := range ts.Hists {
			fmt.Printf(" %d %d %d %d", p.Counts[h], p.P50[h], p.P95[h], p.P99[h])
		}
		fmt.Println()
	}
	fmt.Printf("%d points\n", len(ts.Points))
}

// renderFrame pulls one round of surfaces and writes the console frame.
// With clear set it homes the cursor first (live mode).
func renderFrame(w *os.File, cl *mserve.Client, clear bool) error {
	ts, err := cl.TimeSeries()
	if err != nil {
		return err
	}
	snap, err := cl.Metrics()
	if err != nil {
		return err
	}
	st, err := cl.Stats()
	if err != nil {
		return err
	}
	learn, err := cl.LearnStatus()
	if err != nil {
		return err
	}
	if clear {
		fmt.Fprint(w, "\x1b[2J\x1b[H")
	}

	fmt.Fprintf(w, "kml-top  %s  v%d  conns %d/%d  errors %d\n",
		time.Now().Format("15:04:05"), st.ActiveVersion, st.Conns, st.MaxConns, st.Errors)

	renderSeries(w, ts)

	// Drift and learn lines from the gauge surface and MsgLearnStatus.
	gauges := make(map[string]int64, len(snap.Metrics))
	for _, m := range snap.Metrics {
		if m.Kind != mserve.MetricHistogram {
			gauges[m.Name] = m.Value
		}
	}
	for _, prefix := range []string{"mserve_drift", "readahead_drift"} {
		if _, ok := gauges[prefix+"_windows"]; !ok {
			continue
		}
		state := "ok"
		if gauges[prefix+"_drifted"] != 0 {
			state = "DRIFTED"
		}
		fmt.Fprintf(w, "drift   %-15s %-8s shift %+5dmz  churn %4dpm  windows %d\n",
			prefix, state, gauges[prefix+"_max_shift_mz"],
			gauges[prefix+"_churn_pm"], gauges[prefix+"_windows"])
	}
	fmt.Fprintf(w, "learn   state=%s retrains=%d commits=%d rollbacks=%d baseline=%dpm canary=%dpm\n",
		mserve.LearnStateName(learn.State), learn.Retrains, learn.Commits,
		learn.Rollbacks, learn.BaselinePM, learn.CanaryPM)
	fmt.Fprintf(w, "series  %d points @ %s  (rows total %d, inferences %d, dropped %d)\n",
		len(ts.Points), time.Duration(ts.IntervalNanos), st.Rows, st.Inferences, st.Dropped)
	return nil
}

// renderSeries writes the throughput and latency lines for one series —
// shared between the live frame and the -from file replay.
func renderSeries(w io.Writer, ts tsrec.Series) {
	// Throughput: rows per second from the counter deltas, integer math
	// only (delta × 1e9 / interval_ns).
	rowsCol := tsColumn(ts.Counters, "mserve_rows")
	if rowsCol >= 0 && ts.IntervalNanos > 0 && len(ts.Points) > 0 {
		rates := make([]uint64, len(ts.Points))
		for i := range ts.Points {
			rates[i] = ts.Points[i].Deltas[rowsCol] * 1_000_000_000 / uint64(ts.IntervalNanos)
		}
		fmt.Fprintf(w, "throughput %8d rows/s  %s\n", rates[len(rates)-1], spark(rates))
	} else {
		fmt.Fprintf(w, "throughput        ? rows/s  (no time series yet)\n")
	}

	// Latency: live quantiles of the single-infer histogram, p99
	// sparkline over the capture window; queue delay rides along.
	for _, h := range []struct{ col, label string }{
		{"mserve_infer_ns", "infer"},
		{"mserve_queue_delay_ns", "queue"},
	} {
		hc := tsColumn(ts.Hists, h.col)
		if hc < 0 || len(ts.Points) == 0 {
			continue
		}
		last := &ts.Points[len(ts.Points)-1]
		p99s := make([]uint64, len(ts.Points))
		for i := range ts.Points {
			p99s[i] = uint64(ts.Points[i].P99[hc])
		}
		fmt.Fprintf(w, "%-7s p50 %8s  p95 %8s  p99 %8s  %s\n",
			h.label, fmtNS(last.P50[hc]), fmtNS(last.P95[hc]), fmtNS(last.P99[hc]), spark(p99s))
	}
}

// tsColumn finds a named series column, -1 if absent.
func tsColumn(names []string, want string) int {
	for i, n := range names {
		if n == want {
			return i
		}
	}
	return -1
}

// sparkRunes is the 8-level block ramp; scaling is pure integer math so
// the console never touches floats (mirrors the recorder's own
// float-free discipline).
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// spark renders values as a fixed-height sparkline scaled to the window
// maximum. All-zero input renders the floor rune for every point.
func spark(vals []uint64) string {
	const width = 32
	if len(vals) > width {
		vals = vals[len(vals)-width:]
	}
	var max uint64
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	var sb strings.Builder
	for _, v := range vals {
		idx := 0
		if max > 0 {
			idx = int(v * uint64(len(sparkRunes)-1) / max)
		}
		sb.WriteRune(sparkRunes[idx])
	}
	return sb.String()
}

// fmtNS renders a nanosecond quantile compactly (µs precision above
// 10µs, ms above 10ms).
func fmtNS(ns int64) string {
	switch {
	case ns >= 10_000_000:
		return fmt.Sprintf("%dms", ns/1_000_000)
	case ns >= 10_000:
		return fmt.Sprintf("%dµs", ns/1_000)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
