// Command kml-sweep reproduces the paper's "studying the problem"
// experiment (E1 in DESIGN.md): it runs the benchmark workloads under 20
// readahead settings from 8 to 1024 sectors on the NVMe and SATA-SSD
// device models and prints the throughput surface plus the best value per
// workload — the empirical mapping the KML readahead policy is built from.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	device := flag.String("device", "both", "device model: nvme, ssd, or both")
	seconds := flag.Int("seconds", 10, "virtual seconds per run")
	quick := flag.Bool("quick", false, "8x smaller environment for a fast pass")
	seed := flag.Int64("seed", 1, "simulation seed")
	trainOnly := flag.Bool("train-only", false, "sweep only the four training workloads")
	keys := flag.Int("keys", 0, "override key-space size")
	cachePages := flag.Int("cache-pages", 0, "override page-cache size")
	cpuGet := flag.Duration("cpu-get", 0, "override per-Get CPU cost")
	only := flag.String("only", "", "sweep a single workload by name")
	par := flag.Int("parallel", 0, "worker goroutines for sweep cells (0 = GOMAXPROCS, 1 = serial); output is identical for any value")
	flag.Parse()

	kinds := workload.AllKinds()
	if *trainOnly {
		kinds = workload.TrainingKinds()
	}
	if *only != "" {
		kinds = nil
		for _, k := range workload.AllKinds() {
			if k.String() == *only {
				kinds = []workload.Kind{k}
			}
		}
		if kinds == nil {
			fmt.Fprintf(os.Stderr, "unknown workload %q\n", *only)
			os.Exit(2)
		}
	}
	var cfgs []sim.Config
	switch *device {
	case "nvme":
		cfgs = []sim.Config{bench.DefaultNVMeConfig(*seed)}
	case "ssd":
		cfgs = []sim.Config{bench.DefaultSSDConfig(*seed)}
	case "both":
		cfgs = []sim.Config{bench.DefaultNVMeConfig(*seed), bench.DefaultSSDConfig(*seed)}
	default:
		fmt.Fprintf(os.Stderr, "unknown device %q\n", *device)
		os.Exit(2)
	}
	for _, cfg := range cfgs {
		if *quick {
			cfg = bench.QuickConfig(cfg)
		}
		if *keys != 0 {
			cfg.Keys = *keys
		}
		if *cachePages != 0 {
			cfg.CachePages = *cachePages
		}
		if *cpuGet != 0 {
			cfg.CPUGet = *cpuGet
		}
		res, err := bench.RunSweepParallel(cfg, kinds, nil, *seconds, *par)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res.Write(os.Stdout)
		fmt.Printf("derived policy (sectors by class): %v\n\n", res.Policy())
	}
}
