// Command kml-vet runs the KML kernel-portability analyzers over the
// module (see internal/lint): the same code must run in user space and in
// kernel space, so kernelspace files may not use floats, locks, channels,
// or forbidden imports, and //kml:hotpath functions may not allocate.
//
// Usage:
//
//	kml-vet [packages]
//
// where packages are directories or Go-style `dir/...` patterns relative
// to the working directory (default "./..."). Exit status is 0 when
// clean, 1 when violations are found, 2 on load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: kml-vet [packages]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	os.Exit(run(flag.Args()))
}

func run(args []string) int {
	if len(args) == 0 {
		args = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "kml-vet:", err)
		return 2
	}
	mod, err := lint.LoadModule(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kml-vet:", err)
		return 2
	}
	scopes, err := resolveScopes(cwd, args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kml-vet:", err)
		return 2
	}
	bad := 0
	for _, d := range lint.Check(mod) {
		if !inScope(scopes, d.Pos.Filename) {
			continue
		}
		fmt.Println(d)
		bad++
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "kml-vet: %d violation(s)\n", bad)
		return 1
	}
	return 0
}

// scope is a directory filter: exact directory, or recursive subtree.
type scope struct {
	dir       string
	recursive bool
}

func resolveScopes(cwd string, args []string) ([]scope, error) {
	var out []scope
	for _, arg := range args {
		rec := false
		if rest, ok := strings.CutSuffix(arg, "/..."); ok {
			rec = true
			arg = rest
			if arg == "" {
				arg = "."
			}
		} else if arg == "..." {
			rec, arg = true, "."
		}
		dir := arg
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(cwd, dir)
		}
		abs, err := filepath.Abs(dir)
		if err != nil {
			return nil, err
		}
		// A typo'd scope must not read as "clean": it would silently
		// filter every diagnostic out.
		if fi, err := os.Stat(abs); err != nil || !fi.IsDir() {
			return nil, fmt.Errorf("no such package directory: %s", arg)
		}
		out = append(out, scope{dir: abs, recursive: rec})
	}
	return out, nil
}

func inScope(scopes []scope, file string) bool {
	dir := filepath.Dir(file)
	for _, s := range scopes {
		if dir == s.dir {
			return true
		}
		if s.recursive && strings.HasPrefix(dir, s.dir+string(filepath.Separator)) {
			return true
		}
	}
	return false
}
