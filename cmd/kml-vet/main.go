// Command kml-vet runs the KML kernel-portability analyzers over the
// module (see internal/lint): the same code must run in user space and in
// kernel space, so kernelspace files may not use floats, locks, channels,
// or forbidden imports; //kml:hotpath functions may not allocate; the
// hotreach closure requires everything reachable from hot or kernelspace
// code to be annotated; and the atomics analyzer forbids mixed
// atomic/plain access and lock copies.
//
// Usage:
//
//	kml-vet [-json] [-baseline file] [-write-baseline file] [packages]
//
// where packages are directories or Go-style `dir/...` patterns relative
// to the working directory (default "./..."). With -baseline, diagnostics
// listed in the baseline file are suppressed; on a full-module run, stale
// baseline entries (matching nothing) are themselves failures, so the
// baseline only ratchets down. With -json, the report is emitted as a
// machine-readable document on stdout (CI uploads it as an artifact).
// -write-baseline regenerates the baseline from the current diagnostics.
//
// Exit status is 0 when clean, 1 when violations (or stale baseline
// entries) are found, 2 on load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit a machine-readable JSON report on stdout")
	baselinePath := flag.String("baseline", "", "suppress diagnostics listed in this baseline `file`")
	writeBaseline := flag.String("write-baseline", "", "write the current diagnostics to `file` as a baseline and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: kml-vet [-json] [-baseline file] [-write-baseline file] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	os.Exit(run(flag.Args(), *jsonOut, *baselinePath, *writeBaseline))
}

func run(args []string, jsonOut bool, baselinePath, writeBaseline string) int {
	fullModule := len(args) == 0
	if fullModule {
		args = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "kml-vet:", err)
		return 2
	}
	mod, err := lint.LoadModule(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kml-vet:", err)
		return 2
	}
	scopes, err := resolveScopes(cwd, args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kml-vet:", err)
		return 2
	}
	for _, s := range scopes {
		// An explicit ./... from the module root sees everything; treat
		// it as the full-module run it is so staleness is enforced.
		if s.recursive && s.dir == mod.Dir {
			fullModule = true
		}
	}
	var diags []lint.Diagnostic
	for _, d := range lint.Check(mod) {
		if inScope(scopes, d.Pos.Filename) {
			diags = append(diags, d)
		}
	}

	if writeBaseline != "" {
		content := lint.FormatBaseline(mod, diags)
		if err := os.WriteFile(writeBaseline, []byte(content), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "kml-vet:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "kml-vet: wrote %d baseline entr%s to %s\n",
			len(diags), plural(len(diags), "y", "ies"), writeBaseline)
		return 0
	}

	fresh, suppressed, stale := diags, []lint.Diagnostic(nil), []string(nil)
	if baselinePath != "" {
		base, err := lint.LoadBaseline(baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kml-vet:", err)
			return 2
		}
		fresh, suppressed, stale = base.Apply(mod, diags)
		if !fullModule {
			// A scoped run sees only a slice of the module; entries for
			// files outside the scope are not stale, just unobserved.
			stale = nil
		}
	}

	if jsonOut {
		rep := lint.NewJSONReport(mod, lint.Analyzers(), fresh, suppressed, stale)
		if err := rep.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "kml-vet:", err)
			return 2
		}
	} else {
		for _, d := range fresh {
			fmt.Println(d)
		}
		for _, s := range stale {
			fmt.Printf("stale baseline entry (no diagnostic matches; remove the line): %s\n", s)
		}
	}
	if n := len(fresh); n > 0 {
		fmt.Fprintf(os.Stderr, "kml-vet: %d violation(s)\n", n)
		return 1
	}
	if len(stale) > 0 {
		fmt.Fprintf(os.Stderr, "kml-vet: %d stale baseline entr%s — the ratchet only turns one way\n",
			len(stale), plural(len(stale), "y", "ies"))
		return 1
	}
	return 0
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// scope is a directory filter: exact directory, or recursive subtree.
type scope struct {
	dir       string
	recursive bool
}

func resolveScopes(cwd string, args []string) ([]scope, error) {
	var out []scope
	for _, arg := range args {
		rec := false
		if rest, ok := strings.CutSuffix(arg, "/..."); ok {
			rec = true
			arg = rest
			if arg == "" {
				arg = "."
			}
		} else if arg == "..." {
			rec, arg = true, "."
		}
		dir := arg
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(cwd, dir)
		}
		abs, err := filepath.Abs(dir)
		if err != nil {
			return nil, err
		}
		// A typo'd scope must not read as "clean": it would silently
		// filter every diagnostic out.
		if fi, err := os.Stat(abs); err != nil || !fi.IsDir() {
			return nil, fmt.Errorf("no such package directory: %s", arg)
		}
		out = append(out, scope{dir: abs, recursive: rec})
	}
	return out, nil
}

func inScope(scopes []scope, file string) bool {
	dir := filepath.Dir(file)
	for _, s := range scopes {
		if dir == s.dir {
			return true
		}
		if s.recursive && strings.HasPrefix(dir, s.dir+string(filepath.Separator)) {
			return true
		}
	}
	return false
}
