// Command kml-loadgen is the fleet-scale load generator for the serving
// daemon: it models many independent clients (thousands of connections)
// each issuing inference requests on an OPEN-LOOP arrival schedule —
// Poisson or fixed-rate — rather than the closed request-response loop
// kml-serve-bench runs. Open-loop arrival is what makes server-side
// batch coalescing visible: requests land on the daemon whenever the
// schedule says, regardless of whether earlier ones finished, so
// concurrent arrivals from different connections share gather windows.
//
// Latency is measured from each request's SCHEDULED send time, not the
// actual write time, so a stalled server cannot hide queueing delay by
// slowing the generator down (no coordinated omission).
//
// Typical use, sweeping offered load against a coalescing daemon:
//
//	kml-served -addr /run/kml.sock -deploy readahead.kml -coalesce-window 100us -max-conns 1200 &
//	kml-loadgen -addr /run/kml.sock -conns 1000 -rates 5000,20000,80000 -duration 5s
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mserve"
)

func main() {
	var (
		network  = flag.String("network", "unix", "daemon network: unix or tcp")
		addr     = flag.String("addr", "kml-served.sock", "daemon address")
		conns    = flag.Int("conns", 1000, "concurrent client connections (one worker each)")
		rate     = flag.Float64("rate", 10000, "total offered load in requests/sec across all connections")
		rates    = flag.String("rates", "", "comma-separated offered-load sweep (overrides -rate)")
		duration = flag.Duration("duration", 3*time.Second, "measured time per offered-load step")
		warmup   = flag.Duration("warmup", 300*time.Millisecond, "per-step lead-in excluded from the stats")
		dist     = flag.String("dist", "poisson", "inter-arrival distribution: poisson or fixed")
		batch    = flag.Int("batch", 1, "rows per request (1 = single-inference protocol)")
		seed     = flag.Int64("seed", 1, "base seed; worker w uses seed+w, so runs are reproducible")
	)
	flag.Parse()
	if *conns <= 0 || *batch <= 0 {
		fatal(fmt.Errorf("conns and batch must be positive"))
	}
	if *dist != "poisson" && *dist != "fixed" {
		fatal(fmt.Errorf("unknown -dist %q (want poisson or fixed)", *dist))
	}
	sweep, err := parseRates(*rates, *rate)
	if err != nil {
		fatal(err)
	}

	probe, err := mserve.Dial(*network, *addr)
	if err != nil {
		fatal(err)
	}
	ok, version, inDim, err := probe.Health()
	if err != nil {
		fatal(err)
	}
	if !ok {
		fatal(fmt.Errorf("daemon at %s has no model deployed", *addr))
	}
	statsBefore, err := probe.Stats()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("kml-loadgen: %d conns against %s %s (model v%d, indim %d, %s arrivals)\n",
		*conns, *network, *addr, version, inDim, *dist)
	fmt.Printf("%10s %12s %8s %9s %9s %9s %9s %11s\n",
		"offered", "achieved", "errors", "p50_us", "p95_us", "p99_us", "max_us", "mean_batch")

	// Dial the whole fleet once and reuse it across the sweep: connection
	// churn is not what this tool measures.
	clients := make([]*mserve.Client, *conns)
	for c := range clients {
		cl, err := mserve.Dial(*network, *addr)
		if err != nil {
			fatal(fmt.Errorf("dial conn %d/%d: %w", c, *conns, err))
		}
		cl.SetTimeout(30 * time.Second)
		defer cl.Close()
		clients[c] = cl
	}

	exit := 0
	for _, offered := range sweep {
		res := runStep(clients, offered, stepConfig{
			duration: *duration, warmup: *warmup,
			dist: *dist, batch: *batch, seed: *seed, inDim: inDim,
		})
		statsAfter, err := probe.Stats()
		if err != nil {
			fatal(err)
		}
		meanBatch := coalesceMeanDelta(statsBefore, statsAfter)
		statsBefore = statsAfter
		fmt.Printf("%10.0f %12.0f %8d %9.0f %9.0f %9.0f %9.0f %11.2f\n",
			offered, res.achievedRPS, res.errors,
			res.quantileUS(0.50), res.quantileUS(0.95), res.quantileUS(0.99),
			res.maxUS(), meanBatch)
		if res.errors > 0 {
			exit = 1
		}
	}
	probe.Close()
	os.Exit(exit)
}

// stepConfig parameterizes one offered-load step of the sweep.
type stepConfig struct {
	duration time.Duration
	warmup   time.Duration
	dist     string
	batch    int
	seed     int64
	inDim    int
}

// stepResult aggregates one step's completed-request latencies (sorted,
// microseconds-as-Duration) and error count.
type stepResult struct {
	lats        []time.Duration
	errors      uint64
	achievedRPS float64
}

func (r *stepResult) quantileUS(q float64) float64 {
	if len(r.lats) == 0 {
		return math.NaN()
	}
	return float64(r.lats[int(q*float64(len(r.lats)-1))].Nanoseconds()) / 1e3
}

func (r *stepResult) maxUS() float64 {
	if len(r.lats) == 0 {
		return math.NaN()
	}
	return float64(r.lats[len(r.lats)-1].Nanoseconds()) / 1e3
}

// runStep drives every connection on its own open-loop schedule for
// warmup+duration and returns the measured-window latencies.
func runStep(clients []*mserve.Client, offered float64, cfg stepConfig) stepResult {
	perWorker := offered / float64(len(clients))
	var wg sync.WaitGroup
	var errs atomic.Uint64
	workerLats := make([][]time.Duration, len(clients))
	start := time.Now()
	measureFrom := start.Add(cfg.warmup)
	deadline := start.Add(cfg.warmup + cfg.duration)
	for w := range clients {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := clients[w]
			rng := rand.New(rand.NewSource(cfg.seed + int64(w)))
			feats := make([]float64, cfg.batch*cfg.inDim)
			lats := make([]time.Duration, 0, int(perWorker*cfg.duration.Seconds()*2)+16)
			next := start // first arrival
			for {
				next = next.Add(interArrival(rng, perWorker, cfg.dist))
				if next.After(deadline) {
					break
				}
				if d := time.Until(next); d > 0 {
					time.Sleep(d)
				}
				for j := range feats {
					feats[j] = rng.Float64()
				}
				var err error
				if cfg.batch == 1 {
					_, _, err = cl.Infer(feats)
				} else {
					_, _, err = cl.BatchInfer(feats, cfg.batch, cfg.inDim)
				}
				if !next.After(measureFrom) {
					continue // warmup sample
				}
				if err != nil {
					errs.Add(1)
					continue
				}
				// Open-loop latency: completion minus SCHEDULED arrival.
				lats = append(lats, time.Since(next))
			}
			workerLats[w] = lats
		}(w)
	}
	wg.Wait()
	var res stepResult
	for _, l := range workerLats {
		res.lats = append(res.lats, l...)
	}
	sort.Slice(res.lats, func(i, j int) bool { return res.lats[i] < res.lats[j] })
	res.errors = errs.Load()
	res.achievedRPS = float64(len(res.lats)) / cfg.duration.Seconds()
	return res
}

// interArrival draws the next gap for one worker's schedule: exponential
// for Poisson arrivals, constant for fixed-rate.
func interArrival(rng *rand.Rand, perWorkerRPS float64, dist string) time.Duration {
	if perWorkerRPS <= 0 {
		return time.Hour
	}
	mean := float64(time.Second) / perWorkerRPS
	if dist == "fixed" {
		return time.Duration(mean)
	}
	return time.Duration(rng.ExpFloat64() * mean)
}

// coalesceMeanDelta computes the mean achieved batch size over the
// requests served BETWEEN two stats snapshots, so each sweep step
// reports its own gathering, not the run's cumulative average.
func coalesceMeanDelta(before, after mserve.Stats) float64 {
	batches := after.CoalesceBatches - before.CoalesceBatches
	rows := after.CoalesceRows - before.CoalesceRows
	if batches == 0 {
		return 0
	}
	return float64(rows) / float64(batches)
}

// parseRates turns "-rates 5000,20000" into a sweep, falling back to the
// single -rate value.
func parseRates(list string, single float64) ([]float64, error) {
	if strings.TrimSpace(list) == "" {
		if single <= 0 {
			return nil, fmt.Errorf("rate must be positive")
		}
		return []float64{single}, nil
	}
	var out []float64
	for _, f := range strings.Split(list, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseFloat(f, 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad rate %q", f)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no rates in %q", list)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
