// Command kml-overhead reproduces the paper's overhead study (§4): the
// per-event data-collection and normalization cost (paper: ~49 ns), the
// readahead model's inference latency (paper: 21 µs), one training
// iteration (paper: 51 µs), and the model's memory footprint (paper:
// 3,916 B of model state plus 676 B of inference scratch). These are real
// wall-clock measurements of this implementation, not simulated time.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/nn"
	"repro/internal/readahead"
	"repro/internal/workload"
)

func main() {
	iters := flag.Int("iters", 200_000, "measurement iterations")
	seed := flag.Int64("seed", 1, "seed")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	net := readahead.NewModel(*seed)

	// Representative normalized inputs.
	inputs := make([][]float64, 64)
	for i := range inputs {
		inputs[i] = make([]float64, features.Count)
		for j := range inputs[i] {
			inputs[i][j] = rng.NormFloat64()
		}
	}

	// 1. Data collection: one lock-free ring push per tracepoint.
	pipe, err := core.NewPipeline[features.Record](core.Config{BufferCapacity: 1 << 20}, func([]features.Record, core.Mode) {})
	if err != nil {
		panic(err)
	}
	pipe.SetMode(core.ModeInference)
	start := time.Now()
	for i := 0; i < *iters; i++ {
		pipe.Collect(features.Record{Inode: 1, Offset: int64(i), Time: time.Duration(i)})
		if i%1024 == 1023 {
			pipe.Flush()
		}
	}
	collectNs := float64(time.Since(start).Nanoseconds()) / float64(*iters)

	// 2. Normalization/aggregation: one Extractor.Add per event.
	ext := features.NewExtractor()
	start = time.Now()
	for i := 0; i < *iters; i++ {
		ext.Add(features.Record{Inode: 1, Offset: int64(i % 100000), Time: time.Duration(i)})
	}
	extractNs := float64(time.Since(start).Nanoseconds()) / float64(*iters)

	// 3. Inference: float64 network.
	cls := readahead.NewNNClassifier(net)
	cls.Predict(inputs[0]) // warm buffers
	start = time.Now()
	for i := 0; i < *iters; i++ {
		cls.Predict(inputs[i%len(inputs)])
	}
	inferUs := float64(time.Since(start).Microseconds()) / float64(*iters)

	// 4. Inference: fixed-point (FPU-less) network.
	fcls, err := readahead.NewFixedClassifier(net)
	if err != nil {
		panic(err)
	}
	fcls.Predict(inputs[0])
	start = time.Now()
	for i := 0; i < *iters; i++ {
		fcls.Predict(inputs[i%len(inputs)])
	}
	fixedUs := float64(time.Since(start).Microseconds()) / float64(*iters)

	// 5. One training iteration (single-sample, as deployed online).
	loss := nn.NewCrossEntropy()
	opt := nn.NewSGD(0.01, 0.99)
	batch := nn.NewMat(1, features.Count)
	trainIters := *iters / 10
	start = time.Now()
	for i := 0; i < trainIters; i++ {
		copy(batch.Row(0), inputs[i%len(inputs)])
		net.TrainBatch(batch, nn.ClassTarget([]int{i % workload.NumClasses}), loss, opt)
	}
	trainUs := float64(time.Since(start).Microseconds()) / float64(trainIters)

	fmt.Println("KML readahead model overheads (this implementation, wall clock):")
	fmt.Printf("  data collection (ring push)     %8.1f ns/event   (paper: ~49 ns incl. normalization)\n", collectNs)
	fmt.Printf("  feature aggregation (Add)       %8.1f ns/event\n", extractNs)
	fmt.Printf("  inference (float64)             %8.3f µs          (paper: 21 µs)\n", inferUs)
	fmt.Printf("  inference (fixed Q16.16)        %8.3f µs\n", fixedUs)
	fmt.Printf("  training iteration (batch 1)    %8.3f µs          (paper: 51 µs)\n", trainUs)
	fmt.Println()
	fmt.Println("memory footprint:")
	fmt.Printf("  model parameters                %8d B          (paper: 3,916 B)\n", net.ParamBytes())
	fmt.Printf("  inference scratch               %8d B          (paper: 676 B)\n", net.InferenceScratchBytes())
	fnet, err := nn.CompileFixed(net)
	if err != nil {
		panic(err)
	}
	fmt.Printf("  fixed-point parameters          %8d B\n", fnet.ParamBytes())
}
