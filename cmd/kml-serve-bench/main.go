// Command kml-serve-bench measures inference latency and throughput
// against a live kml-served daemon, the serving-path counterpart of
// cmd/kml-overhead's in-process numbers. The paper reports 21 µs per
// in-kernel inference for the readahead network (§5, Table 3); this
// bench shows where a user-space serving hop lands against that, and how
// much of the gap batching buys back — client-side batching via -batch,
// or server-side cross-connection coalescing via -selfserve with
// -coalesce-window (no daemon required).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/mserve"
)

func main() {
	var (
		network   = flag.String("network", "unix", "daemon network: unix or tcp")
		addr      = flag.String("addr", "kml-served.sock", "daemon address")
		total     = flag.Int("n", 10000, "total inferences to issue")
		batch     = flag.Int("batch", 1, "rows per request (1 = single-inference protocol)")
		conns     = flag.Int("conns", 1, "concurrent client connections")
		seed      = flag.Int64("seed", 1, "seed for synthetic feature vectors")
		selfserve = flag.Bool("selfserve", false, "boot an in-process server on a temp socket instead of dialing a daemon")
		model     = flag.String("model", "testdata/models/readahead.kml", "model file to deploy for -selfserve")
		coalWin   = flag.Duration("coalesce-window", 0, "-selfserve: cross-connection gather window (0 = coalescing off)")
		coalMax   = flag.Int("coalesce-max", 0, "-selfserve: max rows per fused batch (0 = default)")
		coalShard = flag.Int("coalesce-shards", 0, "-selfserve: independent gather domains (0 = 1)")
	)
	flag.Parse()
	if *total <= 0 || *batch <= 0 || *conns <= 0 {
		fatal(fmt.Errorf("n, batch and conns must be positive"))
	}
	if *selfserve {
		sock, stop, err := bootSelfServe(*model, *conns, *coalWin, *coalMax, *coalShard)
		if err != nil {
			fatal(err)
		}
		defer stop()
		*network, *addr = "unix", sock
	}

	probe, err := mserve.Dial(*network, *addr)
	if err != nil {
		fatal(err)
	}
	ok, version, inDim, err := probe.Health()
	probe.Close()
	if err != nil {
		fatal(err)
	}
	if !ok {
		fatal(fmt.Errorf("daemon at %s has no model deployed", *addr))
	}

	reqPerConn := (*total / *batch) / *conns
	if reqPerConn == 0 {
		reqPerConn = 1
	}
	type result struct {
		lats []time.Duration
		rows int
		err  error
	}
	results := make([]result, *conns)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < *conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := &results[c]
			cl, err := mserve.Dial(*network, *addr)
			if err != nil {
				r.err = err
				return
			}
			defer cl.Close()
			rng := rand.New(rand.NewSource(*seed + int64(c)))
			flat := make([]float64, *batch*int(inDim))
			r.lats = make([]time.Duration, 0, reqPerConn)
			for i := 0; i < reqPerConn; i++ {
				for j := range flat {
					flat[j] = rng.Float64()
				}
				t0 := time.Now()
				if *batch == 1 {
					_, _, err = cl.Infer(flat)
				} else {
					_, _, err = cl.BatchInfer(flat, *batch, int(inDim))
				}
				if err != nil {
					r.err = err
					return
				}
				r.lats = append(r.lats, time.Since(t0))
				r.rows += *batch
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var lats []time.Duration
	rows := 0
	for c := range results {
		if results[c].err != nil {
			fatal(fmt.Errorf("conn %d: %w", c, results[c].err))
		}
		lats = append(lats, results[c].lats...)
		rows += results[c].rows
	}
	if rows == 0 {
		fatal(fmt.Errorf("no inferences completed"))
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(lats)-1))
		return lats[i]
	}
	perRow := func(d time.Duration) float64 {
		return float64(d.Nanoseconds()) / 1e3 / float64(*batch)
	}

	fmt.Printf("model version %d, indim %d\n", version, inDim)
	fmt.Printf("requests=%d batch=%d conns=%d rows=%d elapsed=%s\n",
		len(lats), *batch, *conns, rows, elapsed.Round(time.Millisecond))
	fmt.Printf("request latency: p50=%s p95=%s p99=%s max=%s\n",
		pct(0.50), pct(0.95), pct(0.99), lats[len(lats)-1])
	fmt.Printf("per-inference:   p50_us=%.1f p99_us=%.1f (paper in-kernel: 21 us)\n",
		perRow(pct(0.50)), perRow(pct(0.99)))
	fmt.Printf("throughput_ips=%.0f\n", float64(rows)/elapsed.Seconds())

	// Coalescing report: configured window plus the batch sizes the load
	// actually achieved, from the server's own counters.
	st, err := func() (mserve.Stats, error) {
		cl, err := mserve.Dial(*network, *addr)
		if err != nil {
			return mserve.Stats{}, err
		}
		defer cl.Close()
		return cl.Stats()
	}()
	if err == nil && st.CoalesceWindowNS > 0 {
		fmt.Printf("coalesce window_ns=%d max=%d batches=%d rows=%d mean_batch=%.2f\n",
			st.CoalesceWindowNS, st.CoalesceMaxRows, st.CoalesceBatches, st.CoalesceRows,
			st.CoalesceMeanBatch())
	}
}

// bootSelfServe starts an in-process server on a temp unix socket with
// the given model deployed, so the bench can measure the coalescer
// without an external daemon. The returned stop drains connections.
func bootSelfServe(model string, conns int, win time.Duration, maxRows, shards int) (string, func(), error) {
	dir, err := os.MkdirTemp("", "kml-serve-bench")
	if err != nil {
		return "", nil, err
	}
	reg, err := mserve.OpenRegistry(filepath.Join(dir, "registry"))
	if err != nil {
		os.RemoveAll(dir)
		return "", nil, err
	}
	maxConns := conns + 8 // workers plus probe/stats dials
	srv, err := mserve.NewServer(mserve.Config{
		Registry:       reg,
		MaxConns:       maxConns,
		CoalesceWindow: win,
		CoalesceMax:    maxRows,
		CoalesceShards: shards,
	})
	if err != nil {
		os.RemoveAll(dir)
		return "", nil, err
	}
	data, err := os.ReadFile(model)
	if err != nil {
		os.RemoveAll(dir)
		return "", nil, fmt.Errorf("selfserve model: %w", err)
	}
	if _, err := srv.Deploy(mserve.KindNN, "bench", data); err != nil {
		os.RemoveAll(dir)
		return "", nil, err
	}
	sock := filepath.Join(dir, "bench.sock")
	go func() {
		if err := srv.ListenAndServe("unix", sock); err != nil {
			fmt.Fprintln(os.Stderr, "selfserve:", err)
			os.Exit(1)
		}
	}()
	// Wait for the socket to come up.
	for i := 0; i < 200; i++ {
		if _, err := os.Stat(sock); err == nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop := func() {
		srv.Shutdown(5 * time.Second)
		os.RemoveAll(dir)
	}
	return sock, stop, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
