// Command kml-serve-bench measures inference latency and throughput
// against a live kml-served daemon, the serving-path counterpart of
// cmd/kml-overhead's in-process numbers. The paper reports 21 µs per
// in-kernel inference for the readahead network (§5, Table 3); this
// bench shows where a user-space serving hop lands against that, and how
// much of the gap batching buys back.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/mserve"
)

func main() {
	var (
		network = flag.String("network", "unix", "daemon network: unix or tcp")
		addr    = flag.String("addr", "kml-served.sock", "daemon address")
		total   = flag.Int("n", 10000, "total inferences to issue")
		batch   = flag.Int("batch", 1, "rows per request (1 = single-inference protocol)")
		conns   = flag.Int("conns", 1, "concurrent client connections")
		seed    = flag.Int64("seed", 1, "seed for synthetic feature vectors")
	)
	flag.Parse()
	if *total <= 0 || *batch <= 0 || *conns <= 0 {
		fatal(fmt.Errorf("n, batch and conns must be positive"))
	}

	probe, err := mserve.Dial(*network, *addr)
	if err != nil {
		fatal(err)
	}
	ok, version, inDim, err := probe.Health()
	probe.Close()
	if err != nil {
		fatal(err)
	}
	if !ok {
		fatal(fmt.Errorf("daemon at %s has no model deployed", *addr))
	}

	reqPerConn := (*total / *batch) / *conns
	if reqPerConn == 0 {
		reqPerConn = 1
	}
	type result struct {
		lats []time.Duration
		rows int
		err  error
	}
	results := make([]result, *conns)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < *conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := &results[c]
			cl, err := mserve.Dial(*network, *addr)
			if err != nil {
				r.err = err
				return
			}
			defer cl.Close()
			rng := rand.New(rand.NewSource(*seed + int64(c)))
			flat := make([]float64, *batch*int(inDim))
			r.lats = make([]time.Duration, 0, reqPerConn)
			for i := 0; i < reqPerConn; i++ {
				for j := range flat {
					flat[j] = rng.Float64()
				}
				t0 := time.Now()
				if *batch == 1 {
					_, _, err = cl.Infer(flat)
				} else {
					_, _, err = cl.BatchInfer(flat, *batch, int(inDim))
				}
				if err != nil {
					r.err = err
					return
				}
				r.lats = append(r.lats, time.Since(t0))
				r.rows += *batch
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var lats []time.Duration
	rows := 0
	for c := range results {
		if results[c].err != nil {
			fatal(fmt.Errorf("conn %d: %w", c, results[c].err))
		}
		lats = append(lats, results[c].lats...)
		rows += results[c].rows
	}
	if rows == 0 {
		fatal(fmt.Errorf("no inferences completed"))
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(lats)-1))
		return lats[i]
	}
	perRow := func(d time.Duration) float64 {
		return float64(d.Nanoseconds()) / 1e3 / float64(*batch)
	}

	fmt.Printf("model version %d, indim %d\n", version, inDim)
	fmt.Printf("requests=%d batch=%d conns=%d rows=%d elapsed=%s\n",
		len(lats), *batch, *conns, rows, elapsed.Round(time.Millisecond))
	fmt.Printf("request latency: p50=%s p95=%s p99=%s max=%s\n",
		pct(0.50), pct(0.95), pct(0.99), lats[len(lats)-1])
	fmt.Printf("per-inference:   p50_us=%.1f p99_us=%.1f (paper in-kernel: 21 us)\n",
		perRow(pct(0.50)), perRow(pct(0.99)))
	fmt.Printf("throughput_ips=%.0f\n", float64(rows)/elapsed.Seconds())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
