// Command kml-train executes the paper's model-development workflow (§3.3,
// §4): collect labeled feature windows by running the four training
// workloads on the NVMe model, report the Pearson feature-correlation
// analysis, validate with k-fold cross-validation (the paper reports 95.5%
// mean accuracy at k=10), train the final network and decision tree on the
// full dataset, and save both — plus the fitted normalizer — in the KML
// deployment formats.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/bench"
	"repro/internal/features"
	"repro/internal/readahead"
)

func main() {
	quick := flag.Bool("quick", false, "8x smaller environment for a fast pass")
	seconds := flag.Int("seconds", 20, "virtual seconds per (workload, readahead) run")
	kfold := flag.Int("kfold", 10, "cross-validation folds (0 to skip)")
	out := flag.String("out", ".", "directory for model artifacts")
	seed := flag.Int64("seed", 1, "seed")
	par := flag.Int("parallel", 0, "worker goroutines for cross-validation folds (0 = GOMAXPROCS, 1 = serial); accuracies are identical for any value")
	flag.Parse()

	simCfg := bench.DefaultNVMeConfig(*seed)
	if *quick {
		simCfg = bench.QuickConfig(simCfg)
	}
	dcfg := readahead.DatasetConfig{SecondsPerRun: *seconds}
	fmt.Println("collecting training data (4 workloads x 4 readahead values on NVMe)...")
	raw, labels, err := readahead.CollectDataset(simCfg, dcfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("dataset: %d windows\n", len(raw))

	corr, err := features.CorrelationReport(raw, labels)
	if err != nil {
		fatal(err)
	}
	fmt.Println("Pearson correlation with class label:")
	names := features.Names()
	for i, c := range corr {
		fmt.Printf("  %-22s %+.3f\n", names[i], c)
	}

	tcfg := readahead.TrainConfig{Seed: *seed}
	if *kfold > 1 {
		accs := readahead.KFoldCVParallel(raw, labels, *kfold, tcfg, *par)
		fmt.Printf("%d-fold cross-validation accuracy: mean %.1f%% (folds:", *kfold, readahead.Mean(accs)*100)
		for _, a := range accs {
			fmt.Printf(" %.0f%%", a*100)
		}
		fmt.Println(")")
	}

	norm := features.FitNormalizer(raw)
	normed := make([]features.Vector, len(raw))
	for i, v := range raw {
		normed[i] = norm.Apply(v)
	}
	net := readahead.NewModel(*seed)
	losses := readahead.TrainModel(net, normed, labels, tcfg)
	fmt.Printf("final model training: %d epochs, loss %.4f -> %.4f\n",
		len(losses), losses[0], losses[len(losses)-1])
	fmt.Printf("train accuracy (NN): %.1f%%\n",
		readahead.Evaluate(readahead.NewNNClassifier(net), normed, labels)*100)

	tree, err := readahead.TrainTree(normed, labels)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("train accuracy (decision tree): %.1f%%\n",
		readahead.Evaluate(tree, normed, labels)*100)

	modelPath := filepath.Join(*out, "readahead.kml")
	if err := net.SaveFile(modelPath); err != nil {
		fatal(err)
	}
	normPath := filepath.Join(*out, "readahead.norm")
	nf, err := os.Create(normPath)
	if err != nil {
		fatal(err)
	}
	if err := norm.Save(nf); err != nil {
		fatal(err)
	}
	nf.Close()
	treePath := filepath.Join(*out, "readahead.dtree")
	tf, err := os.Create(treePath)
	if err != nil {
		fatal(err)
	}
	if err := tree.Tree().Save(tf); err != nil {
		fatal(err)
	}
	tf.Close()
	fmt.Printf("saved %s, %s, %s\n", modelPath, normPath, treePath)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
