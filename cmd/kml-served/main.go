// Command kml-served is the model-serving daemon: the user-space stand-in
// for the paper's in-kernel inference engine. It owns a versioned model
// registry on disk, serves single and batched inference over the KML wire
// protocol on a unix or TCP socket, and hot-swaps model versions without
// interrupting traffic (deploy/rollback are registry operations plus one
// atomic pointer swap).
//
// Typical use:
//
//	kml-served -addr /run/kml.sock -registry /var/lib/kml -deploy readahead.kml -name readahead-nn
//	kml-served -addr /run/kml.sock -blackbox /var/lib/kml/kml.blackbox
//	kml-served -addr /run/kml.sock -status
//
// With -blackbox the daemon keeps a durable flight recorder: a
// background flusher samples the observability surfaces (metrics,
// time series, traces, learn transitions) into a fixed-size on-disk
// ring every -blackbox-interval, and a crash — panic, SIGQUIT, even
// kill -9 between flushes — leaves a file kml-postmortem can
// reconstruct the final minutes from.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/blackbox"
	"repro/internal/blockdev"
	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/memutil"
	"repro/internal/mserve"
	"repro/internal/olearn"
	"repro/internal/readahead"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

func main() {
	var (
		network   = flag.String("network", "unix", "listen network: unix or tcp")
		addr      = flag.String("addr", "kml-served.sock", "listen address (socket path or host:port)")
		registry  = flag.String("registry", "kml-registry", "model registry directory")
		deploy    = flag.String("deploy", "", "model file to deploy at startup (optional)")
		kind      = flag.String("kind", "nn", "model kind for -deploy: nn or dtree")
		name      = flag.String("name", "readahead", "model name for -deploy")
		maxConns  = flag.Int("max-conns", 64, "concurrent connection limit")
		reserveMB = flag.Int("reserve-mb", 0, "memory reservation for admission control (0 = unlimited)")
		status    = flag.Bool("status", false, "query a running daemon's stats and exit")
		debugAddr = flag.String("debug-addr", "", "optional HTTP debug listener (host:port) serving /metrics, /traces, /learn, expvar, pprof")
		tsEvery   = flag.Duration("ts-interval", 0, "metric time-series capture interval for MsgTimeSeries / kml-top (0 = 1s default)")
		simN      = flag.Int("sim", 0, "run N decision windows of the simulated readahead loop against the deployed model before serving (0 = off)")
		simWl     = flag.String("sim-workload", "readseq,readrandom", "comma-separated workload phases for -sim")
		normFile  = flag.String("norm", "", "normalizer file for -sim (training-time stats; baselines the drift monitor)")
		driftWin  = flag.Int("drift-window", 0, "drift-monitor window in decisions/requests (0 = default)")
		olearnOn  = flag.Bool("olearn", false, "run the online-learning controller during -sim: drift-triggered retrain, canary deploy, auto-rollback")
		simPoison = flag.Uint64("sim-poison", 0, "poison retrain cycle N during -sim -olearn (mislabels its examples; exercises the canary rollback)")
		learnMZ   = flag.Int64("learn-budget-mz", 0, "drift-trigger shift budget in milli-z for -olearn (0 = default)")
		coalWin   = flag.Duration("coalesce-window", 0, "cross-connection batch gather window, e.g. 100us (0 = coalescing off)")
		coalMax   = flag.Int("coalesce-max", 0, "max rows gathered into one fused batch (0 = default)")
		coalShard = flag.Int("coalesce-shards", 0, "independent gather domains; raise if the gather lock bottlenecks (0 = 1)")
		bbPath    = flag.String("blackbox", "", "durable flight-recorder file; crash forensics via kml-postmortem (empty = off)")
		bbSize    = flag.Int64("blackbox-size", blackbox.DefaultSize, "flight-recorder ring size in bytes")
		bbEvery   = flag.Duration("blackbox-interval", blackbox.DefaultFlushInterval, "flight-recorder capture+flush period (bounds data loss on a hard kill)")
		bbFsync   = flag.Bool("blackbox-fsync", false, "fsync the flight recorder on every flush (survives power loss, not just process death)")
	)
	flag.Parse()

	if *status {
		os.Exit(printStatus(*network, *addr))
	}

	reg, err := mserve.OpenRegistry(*registry)
	if err != nil {
		fatal(err)
	}
	cfg := mserve.Config{
		Registry: reg, MaxConns: *maxConns, DriftWindow: *driftWin,
		TimeSeriesInterval: *tsEvery,
		CoalesceWindow:     *coalWin,
		CoalesceMax:        *coalMax,
		CoalesceShards:     *coalShard,
	}
	if *reserveMB > 0 {
		arena := memutil.NewArena("kml-served")
		arena.Reserve(int64(*reserveMB) << 20)
		cfg.Arena = arena
	}
	srv, err := mserve.NewServer(cfg)
	if err != nil {
		fatal(err)
	}

	// finalFlush is the crash hook: capture one last sample and force it
	// to disk. Nil without -blackbox.
	var bb *blackbox.Recorder
	var finalFlush func()
	if *bbPath != "" {
		bb, err = blackbox.Open(blackbox.Config{
			Path: *bbPath, Size: *bbSize,
			FlushInterval: *bbEvery, FsyncEveryFlush: *bbFsync,
		})
		if err != nil {
			fatal(fmt.Errorf("blackbox: %w", err))
		}
		sampler := blackbox.NewSampler(bb, srv)
		// Capture runs from the recorder's flusher goroutine, the sync
		// opcode's connection goroutine, and the crash hooks; the sampler
		// keeps cursors, so serialize it.
		var capMu sync.Mutex
		capture := func(now int64) {
			capMu.Lock()
			sampler.Capture(now)
			capMu.Unlock()
		}
		finalFlush = func() {
			capture(time.Now().UnixNano())
			_ = bb.FinalFlush()
		}
		bb.Start(capture)
		srv.SetBlackboxSource(func(sync bool) mserve.BlackboxStatus {
			if sync {
				finalFlush()
			}
			st := bb.Status()
			return mserve.BlackboxStatus{
				Enabled: true, Records: st.Records, Dropped: st.Dropped,
				Flushes: st.Flushes, RingBytes: st.RingBytes,
				TornAtOpen: st.TornAtOpen, LastFlushNanos: st.LastFlushNanos,
				Path: bb.Path(),
			}
		})
		// Best-effort final capture on a main-goroutine panic (SIGKILL is
		// unhookable — there the periodic flush bounds the loss).
		defer func() {
			if p := recover(); p != nil {
				finalFlush()
				panic(p)
			}
		}()
		fmt.Printf("blackbox %s (ring %d bytes, flush every %s, %d torn at open)\n",
			bb.Path(), bb.RingBytes(), *bbEvery, bb.Status().TornAtOpen)
	}

	if *deploy != "" {
		data, err := os.ReadFile(*deploy)
		if err != nil {
			fatal(err)
		}
		k, err := parseKind(*kind)
		if err != nil {
			fatal(err)
		}
		v, err := srv.Deploy(k, *name, data)
		if err != nil {
			fatal(fmt.Errorf("deploy %s: %w", *deploy, err))
		}
		fmt.Printf("deployed %s as version %d\n", *deploy, v.Number)
	}

	if *simN > 0 {
		opts := simOptions{
			windows:  *simN,
			phases:   *simWl,
			normFile: *normFile,
			driftWin: *driftWin,
			olearn:   *olearnOn,
			poison:   *simPoison,
			budgetMZ: *learnMZ,
		}
		if err := runSim(srv, reg, opts); err != nil {
			fatal(fmt.Errorf("sim: %w", err))
		}
	}

	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fatal(fmt.Errorf("debug listener: %w", err))
		}
		// Print the resolved address so `:0` works in scripts.
		fmt.Printf("debug listening on http://%s\n", dln.Addr())
		mux := telemetry.DebugMux(srv.MetricsRegistry(),
			telemetry.DebugEndpoint{Path: "/traces", Render: srv.WriteTraces},
			telemetry.DebugEndpoint{Path: "/learn", Render: srv.WriteLearn},
			telemetry.DebugEndpoint{Path: "/timeseries", Render: srv.WriteTimeSeries},
		)
		go func() { _ = http.Serve(dln, mux) }()
	}

	if *network == "unix" {
		// A previous unclean shutdown leaves the socket file behind.
		_ = os.Remove(*addr)
	}
	ln, err := net.Listen(*network, *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("kml-served listening on %s %s (registry %s)\n", *network, *addr, *registry)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM, syscall.SIGQUIT)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	select {
	case sig := <-sigs:
		if sig == syscall.SIGQUIT {
			// Crash path: persist the last window, then hand the signal
			// back to the runtime's default handler for the stack dump.
			if finalFlush != nil {
				finalFlush()
			}
			signal.Reset(syscall.SIGQUIT)
			_ = syscall.Kill(syscall.Getpid(), syscall.SIGQUIT)
			select {} // unreachable: the re-raised SIGQUIT kills us
		}
		fmt.Printf("received %s, draining...\n", sig)
		srv.Shutdown(10 * time.Second)
		if err := <-done; err != nil {
			fatal(err)
		}
	case err := <-done:
		if err != nil {
			fatal(err)
		}
	}
	if bb != nil {
		if finalFlush != nil {
			finalFlush()
		}
		if err := bb.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "blackbox close: %v\n", err)
		}
	}
	st := srv.Stats()
	fmt.Printf("served %d inferences (%d rows), %d deploys, %d dropped events\n",
		st.Inferences, st.Rows, st.Deploys, st.Dropped)
}

// simOptions parameterizes the boot-time simulated decision loop.
type simOptions struct {
	windows  int
	phases   string
	normFile string
	driftWin int
	olearn   bool   // run the online-learning controller alongside the loop
	poison   uint64 // 1-based retrain cycle to poison (0 = none)
	budgetMZ int64  // drift-trigger shift budget (0 = default)
}

// runSim drives the full simulated decision loop — workload → tracer →
// feature pipeline → deployed model → readahead policy → page cache —
// for opts.windows one-second decision windows, switching workload
// phases along the way. Every decision records an end-to-end trace into
// the server's arena (pullable via MsgTraces) and feeds the readahead
// drift monitor, so a freshly booted daemon has real observability to
// show. With opts.olearn the loop also runs the closed-loop controller:
// drift past budget retrains on recent windows in the background,
// deploys through the server, and the canary rolls back regressions.
func runSim(srv *mserve.Server, reg *mserve.Registry, opts simOptions) error {
	kinds, err := parseWorkloads(opts.phases)
	if err != nil {
		return err
	}
	var norm features.Normalizer
	if opts.normFile != "" {
		f, err := os.Open(opts.normFile)
		if err != nil {
			return err
		}
		norm, err = features.LoadNormalizer(f)
		f.Close()
		if err != nil {
			return err
		}
	}
	if opts.olearn {
		return runSimOnline(srv, reg, kinds, norm, opts)
	}
	art, err := reg.ActiveArtifact()
	if err != nil {
		return fmt.Errorf("no deployed model to simulate against: %w", err)
	}
	inst, err := art.Instantiate()
	if err != nil {
		return err
	}
	env, err := sim.NewEnv(sim.Config{Profile: blockdev.NVMe()})
	if err != nil {
		return err
	}
	tuner, err := readahead.NewTuner(env.Dev, inst, norm, readahead.TunerConfig{})
	if err != nil {
		return err
	}
	tuner.Instrument(srv.MetricsRegistry(), 64)
	tuner.InstrumentDrift(srv.MetricsRegistry(), opts.driftWin)
	tuner.EnableTracing(srv.TraceArena(), env.Cache.HitMissCounts)
	env.Tracer.Register(tuner.Hook())

	perPhase := (opts.windows + len(kinds) - 1) / len(kinds)
	tuner.MaybeTick(env.Clk.Now()) // arm the first window
	decided := 0
	for _, k := range kinds {
		runner := env.NewRunner(k)
		for w := 0; w < perPhase && decided < opts.windows; w++ {
			deadline := env.Clk.Now() + 1100*time.Millisecond
			for env.Clk.Now() < deadline {
				if err := runner.Step(); err != nil {
					return err
				}
			}
			tuner.MaybeTick(env.Clk.Now())
			decided++
		}
	}
	tuner.FlushTrace()
	fmt.Printf("sim: %d decision windows across %s, %d traces retained, hit rate %.3f\n",
		decided, opts.phases, srv.TraceArena().Len(), env.Cache.Stats().HitRate())
	return nil
}

// runSimOnline is the -olearn variant of runSim: the tuner follows a
// hot-swap Deployment the controller keeps in lockstep with the server's
// registry, so a drift-triggered retrain visibly changes the loop's
// decisions (and a poisoned one visibly regresses and rolls back).
func runSimOnline(srv *mserve.Server, reg *mserve.Registry, kinds []workload.Kind, norm features.Normalizer, opts simOptions) error {
	active, ok := reg.Active()
	if !ok {
		return fmt.Errorf("no deployed model to simulate against")
	}
	inst, err := reg.Instance(active.Number)
	if err != nil {
		return err
	}
	// A cache much smaller than the dataset, so readahead decisions —
	// not residency — dominate the hit rate the canary judges by.
	env, err := sim.NewEnv(sim.Config{Profile: blockdev.NVMe(), Keys: 6000, CachePages: 128, Seed: 7})
	if err != nil {
		return err
	}
	dep := mserve.NewDeployment[core.Classifier](inst, active.Number)
	// Contrast policy: scans get deep readahead, everything else shallow.
	// A model that stops recognizing the running scan starves it from 1
	// window fills — a regression the hit-rate canary can actually see.
	// Both values sit inside the offline training sweep {8..1024}, so
	// the readahead feature stays in-distribution either way.
	policy := readahead.Policy{256, 8, 8, 8}
	tuner, err := readahead.NewDeployedTuner(env.Dev, dep, norm, readahead.TunerConfig{Policy: policy})
	if err != nil {
		return err
	}
	tuner.Instrument(srv.MetricsRegistry(), 64)
	drift := tuner.InstrumentDrift(srv.MetricsRegistry(), opts.driftWin)
	tuner.EnableTracing(srv.TraceArena(), env.Cache.HitMissCounts)
	env.Tracer.Register(tuner.Hook())

	ctl, err := olearn.New(olearn.Config{
		Server:      srv,
		Drift:       drift,
		Arena:       srv.TraceArena(),
		Norm:        norm,
		TunerDeploy: dep,
		Trigger:     olearn.TriggerConfig{ShiftBudgetMilliZ: opts.budgetMZ},
		// Small batches and a small keep-latest ring: a boot-time sim has
		// tens of windows, and recent ones should dominate a retrain.
		Train:           readahead.TrainConfig{Epochs: 120, Batch: 8},
		Capacity:        16,
		MinExamples:     8,
		CanaryWindows:   3,
		BaselineWindows: 4,
		Metrics:         srv.MetricsRegistry(),
	})
	if err != nil {
		return err
	}
	if opts.poison > 0 {
		ctl.PoisonRetrain(opts.poison)
	}
	tuner.SetSampleSink(ctl.AddSample)
	srv.SetLearnSource(ctl.Status)

	perPhase := (opts.windows + len(kinds) - 1) / len(kinds)
	tuner.MaybeTick(env.Clk.Now()) // arm the first window
	decided := 0
	for _, k := range kinds {
		runner := env.NewRunner(k)
		for w := 0; w < perPhase && decided < opts.windows; w++ {
			deadline := env.Clk.Now() + 1100*time.Millisecond
			for env.Clk.Now() < deadline {
				for i := 0; i < 16 && env.Clk.Now() < deadline; i++ {
					if err := runner.Step(); err != nil {
						return err
					}
				}
				// Drain the collection ring between step batches
				// (MaybeTick flushes every call but decides once per
				// window) so a deep-readahead event storm cannot
				// overflow it.
				tuner.MaybeTick(env.Clk.Now())
			}
			ctl.Step()
			if ctl.State() == olearn.StateRetraining && !ctl.Settle(2*time.Minute) {
				return fmt.Errorf("retrain did not settle")
			}
			decided++
		}
	}
	tuner.FlushTrace()
	ctl.Step() // settle a transient committed/rolled-back state
	st := ctl.Status()
	fmt.Printf("sim: %d decision windows across %s, %d traces retained, hit rate %.3f\n",
		decided, opts.phases, srv.TraceArena().Len(), env.Cache.Stats().HitRate())
	fmt.Printf("olearn: state=%s retrains=%d deploys=%d commits=%d rollbacks=%d fires=%d v%d\n",
		mserve.LearnStateName(st.State), st.Retrains, st.Deploys, st.Commits, st.Rollbacks,
		st.TriggerFires, st.LastVersion)
	return nil
}

// parseWorkloads maps comma-separated db_bench names to workload kinds.
func parseWorkloads(s string) ([]workload.Kind, error) {
	var kinds []workload.Kind
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, k := range workload.AllKinds() {
			if k.String() == name {
				kinds = append(kinds, k)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown workload %q", name)
		}
	}
	if len(kinds) == 0 {
		return nil, fmt.Errorf("no workloads in %q", s)
	}
	return kinds, nil
}

func printStatus(network, addr string) int {
	cl, err := mserve.Dial(network, addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer cl.Close()
	st, err := cl.Stats()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("active_version      %d\n", st.ActiveVersion)
	fmt.Printf("deploys             %d\n", st.Deploys)
	fmt.Printf("rollbacks           %d\n", st.Rollbacks)
	fmt.Printf("inferences          %d\n", st.Inferences)
	fmt.Printf("rows                %d\n", st.Rows)
	fmt.Printf("errors              %d\n", st.Errors)
	fmt.Printf("conns               %d/%d\n", st.Conns, st.MaxConns)
	fmt.Printf("conn_rejects        %d\n", st.ConnRejects)
	fmt.Printf("arena_rejects       %d\n", st.ArenaRejects)
	fmt.Printf("collected           %d\n", st.Collected)
	fmt.Printf("processed           %d\n", st.Processed)
	fmt.Printf("dropped             %d\n", st.Dropped)
	fmt.Printf("buffer              %d/%d\n", st.BufferLen, st.BufferCap)
	fmt.Printf("arena_live_bytes    %d\n", st.ArenaLive)
	fmt.Printf("arena_peak_bytes    %d\n", st.ArenaPeak)
	fmt.Printf("coalesce_window_ns  %d\n", st.CoalesceWindowNS)
	fmt.Printf("coalesce_max        %d\n", st.CoalesceMaxRows)
	fmt.Printf("coalesce_batches    %d\n", st.CoalesceBatches)
	fmt.Printf("coalesce_rows       %d\n", st.CoalesceRows)
	fmt.Printf("coalesce_mean_batch %.2f\n", st.CoalesceMeanBatch())

	// The richer telemetry surface: latency percentiles per request type
	// and the flight recorder's last served decisions.
	snap, err := cl.Metrics()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	for _, m := range snap.Metrics {
		if m.Kind != mserve.MetricHistogram || m.Hist.Count == 0 {
			continue
		}
		fmt.Printf("%s count=%d p50=%dns p95=%dns p99=%dns\n",
			m.Name, m.Hist.Count,
			m.Hist.Quantile(0.50), m.Hist.Quantile(0.95), m.Hist.Quantile(0.99))
	}
	for _, d := range snap.Decisions {
		fmt.Printf("decision t=%d class=%d rows=%d v%d\n", d.TimeNanos, d.Class, d.Rows, d.Version)
	}
	printDriftSummary(snap)
	printLearnStatus(cl)
	printBlackboxStatus(cl)
	return 0
}

// printBlackboxStatus renders the flight recorder's line, when one is
// attached (a daemon without -blackbox reports the disabled zero value).
func printBlackboxStatus(cl *mserve.Client) {
	st, err := cl.Blackbox(false)
	if err != nil || !st.Enabled {
		return
	}
	fmt.Printf("blackbox %s ring=%d records=%d dropped=%d flushes=%d torn_at_open=%d last_flush=%s\n",
		st.Path, st.RingBytes, st.Records, st.Dropped, st.Flushes, st.TornAtOpen,
		time.Unix(0, st.LastFlushNanos).UTC().Format("15:04:05.000"))
}

// printLearnStatus renders the online-learning controller snapshot, when
// one is wired in (a daemon without -olearn reports the idle zero value).
func printLearnStatus(cl *mserve.Client) {
	st, err := cl.LearnStatus()
	if err != nil {
		// Daemons predating MsgLearnStatus simply lack the surface.
		return
	}
	fmt.Printf("learn state=%s retrains=%d deploys=%d commits=%d rollbacks=%d fires=%d examples=%d v%d baseline=%dpm canary=%dpm\n",
		mserve.LearnStateName(st.State), st.Retrains, st.Deploys, st.Commits, st.Rollbacks,
		st.TriggerFires, st.Examples, st.LastVersion, st.BaselinePM, st.CanaryPM)
	for _, e := range st.Events {
		fmt.Printf("retrain v%d %s examples=%d train=%s baseline=%dpm canary=%dpm shift=%+.2fz churn=%dpm\n",
			e.Version, mserve.RetrainOutcomeName(e.Outcome), e.Examples,
			time.Duration(e.DurationNanos).Round(time.Millisecond),
			e.BaselinePM, e.CanaryPM, float64(e.MaxShiftMZ)/1000, e.ChurnPM)
	}
}

// printDriftSummary condenses the drift gauges (registered under
// mserve_drift for the serving path, readahead_drift for a -sim tuner)
// into one line per monitor: max population shift in z, prediction
// churn, windows completed, and whether the shift threshold tripped.
func printDriftSummary(snap mserve.MetricsSnapshot) {
	byName := make(map[string]int64, len(snap.Metrics))
	for _, m := range snap.Metrics {
		if m.Kind != mserve.MetricHistogram {
			byName[m.Name] = m.Value
		}
	}
	for _, prefix := range []string{"mserve_drift", "readahead_drift"} {
		windows, ok := byName[prefix+"_windows"]
		if !ok {
			continue
		}
		state := "ok"
		if byName[prefix+"_drifted"] != 0 {
			state = "DRIFTED"
		}
		fmt.Printf("drift %-15s %s max_shift=%+.2fz churn=%dpm windows=%d decisions=%d\n",
			prefix, state,
			float64(byName[prefix+"_max_shift_mz"])/1000,
			byName[prefix+"_churn_pm"], windows, byName[prefix+"_decisions"])
	}
}

func parseKind(s string) (mserve.ModelKind, error) {
	switch s {
	case "nn":
		return mserve.KindNN, nil
	case "dtree":
		return mserve.KindDTree, nil
	}
	return 0, fmt.Errorf("unknown model kind %q (want nn or dtree)", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
