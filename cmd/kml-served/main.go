// Command kml-served is the model-serving daemon: the user-space stand-in
// for the paper's in-kernel inference engine. It owns a versioned model
// registry on disk, serves single and batched inference over the KML wire
// protocol on a unix or TCP socket, and hot-swaps model versions without
// interrupting traffic (deploy/rollback are registry operations plus one
// atomic pointer swap).
//
// Typical use:
//
//	kml-served -addr /run/kml.sock -registry /var/lib/kml -deploy readahead.kml -name readahead-nn
//	kml-served -addr /run/kml.sock -status
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/blockdev"
	"repro/internal/features"
	"repro/internal/memutil"
	"repro/internal/mserve"
	"repro/internal/readahead"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

func main() {
	var (
		network   = flag.String("network", "unix", "listen network: unix or tcp")
		addr      = flag.String("addr", "kml-served.sock", "listen address (socket path or host:port)")
		registry  = flag.String("registry", "kml-registry", "model registry directory")
		deploy    = flag.String("deploy", "", "model file to deploy at startup (optional)")
		kind      = flag.String("kind", "nn", "model kind for -deploy: nn or dtree")
		name      = flag.String("name", "readahead", "model name for -deploy")
		maxConns  = flag.Int("max-conns", 64, "concurrent connection limit")
		reserveMB = flag.Int("reserve-mb", 0, "memory reservation for admission control (0 = unlimited)")
		status    = flag.Bool("status", false, "query a running daemon's stats and exit")
		debugAddr = flag.String("debug-addr", "", "optional HTTP debug listener (host:port) serving /metrics, expvar, pprof")
		simN      = flag.Int("sim", 0, "run N decision windows of the simulated readahead loop against the deployed model before serving (0 = off)")
		simWl     = flag.String("sim-workload", "readseq,readrandom", "comma-separated workload phases for -sim")
		normFile  = flag.String("norm", "", "normalizer file for -sim (training-time stats; baselines the drift monitor)")
		driftWin  = flag.Int("drift-window", 0, "drift-monitor window in decisions/requests (0 = default)")
	)
	flag.Parse()

	if *status {
		os.Exit(printStatus(*network, *addr))
	}

	reg, err := mserve.OpenRegistry(*registry)
	if err != nil {
		fatal(err)
	}
	cfg := mserve.Config{Registry: reg, MaxConns: *maxConns, DriftWindow: *driftWin}
	if *reserveMB > 0 {
		arena := memutil.NewArena("kml-served")
		arena.Reserve(int64(*reserveMB) << 20)
		cfg.Arena = arena
	}
	srv, err := mserve.NewServer(cfg)
	if err != nil {
		fatal(err)
	}
	if *deploy != "" {
		data, err := os.ReadFile(*deploy)
		if err != nil {
			fatal(err)
		}
		k, err := parseKind(*kind)
		if err != nil {
			fatal(err)
		}
		v, err := srv.Deploy(k, *name, data)
		if err != nil {
			fatal(fmt.Errorf("deploy %s: %w", *deploy, err))
		}
		fmt.Printf("deployed %s as version %d\n", *deploy, v.Number)
	}

	if *simN > 0 {
		if err := runSim(srv, reg, *simN, *simWl, *normFile, *driftWin); err != nil {
			fatal(fmt.Errorf("sim: %w", err))
		}
	}

	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fatal(fmt.Errorf("debug listener: %w", err))
		}
		// Print the resolved address so `:0` works in scripts.
		fmt.Printf("debug listening on http://%s\n", dln.Addr())
		go func() { _ = http.Serve(dln, telemetry.DebugMux(srv.MetricsRegistry())) }()
	}

	if *network == "unix" {
		// A previous unclean shutdown leaves the socket file behind.
		_ = os.Remove(*addr)
	}
	ln, err := net.Listen(*network, *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("kml-served listening on %s %s (registry %s)\n", *network, *addr, *registry)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	select {
	case sig := <-sigs:
		fmt.Printf("received %s, draining...\n", sig)
		srv.Shutdown(10 * time.Second)
		if err := <-done; err != nil {
			fatal(err)
		}
	case err := <-done:
		if err != nil {
			fatal(err)
		}
	}
	st := srv.Stats()
	fmt.Printf("served %d inferences (%d rows), %d deploys, %d dropped events\n",
		st.Inferences, st.Rows, st.Deploys, st.Dropped)
}

// runSim drives the full simulated decision loop — workload → tracer →
// feature pipeline → deployed model → readahead policy → page cache —
// for `windows` one-second decision windows, switching workload phases
// along the way. Every decision records an end-to-end trace into the
// server's arena (pullable via MsgTraces) and feeds the readahead drift
// monitor, so a freshly booted daemon has real observability to show.
func runSim(srv *mserve.Server, reg *mserve.Registry, windows int, phases, normFile string, driftWin int) error {
	kinds, err := parseWorkloads(phases)
	if err != nil {
		return err
	}
	art, err := reg.ActiveArtifact()
	if err != nil {
		return fmt.Errorf("no deployed model to simulate against: %w", err)
	}
	inst, err := art.Instantiate()
	if err != nil {
		return err
	}
	var norm features.Normalizer
	if normFile != "" {
		f, err := os.Open(normFile)
		if err != nil {
			return err
		}
		norm, err = features.LoadNormalizer(f)
		f.Close()
		if err != nil {
			return err
		}
	}
	env, err := sim.NewEnv(sim.Config{Profile: blockdev.NVMe()})
	if err != nil {
		return err
	}
	tuner, err := readahead.NewTuner(env.Dev, inst, norm, readahead.TunerConfig{})
	if err != nil {
		return err
	}
	tuner.Instrument(srv.MetricsRegistry(), 64)
	tuner.InstrumentDrift(srv.MetricsRegistry(), driftWin)
	tuner.EnableTracing(srv.TraceArena(), env.Cache.HitMissCounts)
	env.Tracer.Register(tuner.Hook())

	perPhase := (windows + len(kinds) - 1) / len(kinds)
	tuner.MaybeTick(env.Clk.Now()) // arm the first window
	decided := 0
	for _, k := range kinds {
		runner := env.NewRunner(k)
		for w := 0; w < perPhase && decided < windows; w++ {
			deadline := env.Clk.Now() + 1100*time.Millisecond
			for env.Clk.Now() < deadline {
				if err := runner.Step(); err != nil {
					return err
				}
			}
			tuner.MaybeTick(env.Clk.Now())
			decided++
		}
	}
	tuner.FlushTrace()
	fmt.Printf("sim: %d decision windows across %s, %d traces retained, hit rate %.3f\n",
		decided, phases, srv.TraceArena().Len(), env.Cache.Stats().HitRate())
	return nil
}

// parseWorkloads maps comma-separated db_bench names to workload kinds.
func parseWorkloads(s string) ([]workload.Kind, error) {
	var kinds []workload.Kind
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, k := range workload.AllKinds() {
			if k.String() == name {
				kinds = append(kinds, k)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown workload %q", name)
		}
	}
	if len(kinds) == 0 {
		return nil, fmt.Errorf("no workloads in %q", s)
	}
	return kinds, nil
}

func printStatus(network, addr string) int {
	cl, err := mserve.Dial(network, addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer cl.Close()
	st, err := cl.Stats()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("active_version      %d\n", st.ActiveVersion)
	fmt.Printf("deploys             %d\n", st.Deploys)
	fmt.Printf("rollbacks           %d\n", st.Rollbacks)
	fmt.Printf("inferences          %d\n", st.Inferences)
	fmt.Printf("rows                %d\n", st.Rows)
	fmt.Printf("errors              %d\n", st.Errors)
	fmt.Printf("conns               %d/%d\n", st.Conns, st.MaxConns)
	fmt.Printf("conn_rejects        %d\n", st.ConnRejects)
	fmt.Printf("arena_rejects       %d\n", st.ArenaRejects)
	fmt.Printf("collected           %d\n", st.Collected)
	fmt.Printf("processed           %d\n", st.Processed)
	fmt.Printf("dropped             %d\n", st.Dropped)
	fmt.Printf("buffer              %d/%d\n", st.BufferLen, st.BufferCap)
	fmt.Printf("arena_live_bytes    %d\n", st.ArenaLive)
	fmt.Printf("arena_peak_bytes    %d\n", st.ArenaPeak)

	// The richer telemetry surface: latency percentiles per request type
	// and the flight recorder's last served decisions.
	snap, err := cl.Metrics()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	for _, m := range snap.Metrics {
		if m.Kind != mserve.MetricHistogram || m.Hist.Count == 0 {
			continue
		}
		fmt.Printf("%s count=%d p50=%dns p95=%dns p99=%dns\n",
			m.Name, m.Hist.Count,
			m.Hist.Quantile(0.50), m.Hist.Quantile(0.95), m.Hist.Quantile(0.99))
	}
	for _, d := range snap.Decisions {
		fmt.Printf("decision t=%d class=%d rows=%d v%d\n", d.TimeNanos, d.Class, d.Rows, d.Version)
	}
	printDriftSummary(snap)
	return 0
}

// printDriftSummary condenses the drift gauges (registered under
// mserve_drift for the serving path, readahead_drift for a -sim tuner)
// into one line per monitor: max population shift in z, prediction
// churn, windows completed, and whether the shift threshold tripped.
func printDriftSummary(snap mserve.MetricsSnapshot) {
	byName := make(map[string]int64, len(snap.Metrics))
	for _, m := range snap.Metrics {
		if m.Kind != mserve.MetricHistogram {
			byName[m.Name] = m.Value
		}
	}
	for _, prefix := range []string{"mserve_drift", "readahead_drift"} {
		windows, ok := byName[prefix+"_windows"]
		if !ok {
			continue
		}
		state := "ok"
		if byName[prefix+"_drifted"] != 0 {
			state = "DRIFTED"
		}
		fmt.Printf("drift %-15s %s max_shift=%+.2fz churn=%dpm windows=%d decisions=%d\n",
			prefix, state,
			float64(byName[prefix+"_max_shift_mz"])/1000,
			byName[prefix+"_churn_pm"], windows, byName[prefix+"_decisions"])
	}
}

func parseKind(s string) (mserve.ModelKind, error) {
	switch s {
	case "nn":
		return mserve.KindNN, nil
	case "dtree":
		return mserve.KindDTree, nil
	}
	return 0, fmt.Errorf("unknown model kind %q (want nn or dtree)", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
