package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const baseSnapshot = `{
  "pr": 4,
  "benchmarks": [
    {"name": "E5_Inference", "iters": 1000, "metrics": {"ns/op": 700, "allocs/op": 0}},
    {"name": "E5_Batched/rows16", "iters": 1000, "metrics": {"ns/op": 1800, "ns/sample": 115, "allocs/op": 0}},
    {"name": "E5_Training", "iters": 1000, "metrics": {"ns/op": 4000, "allocs/op": 0}}
  ]
}`

// headSnapshot regresses E5_Inference ns/op by 40%, E5_Batched
// ns/sample by ~74%, and grows E5_Training allocs/op from zero.
const headSnapshot = `{
  "pr": 5,
  "benchmarks": [
    {"name": "E5_Inference", "iters": 1000, "metrics": {"ns/op": 980, "allocs/op": 0}},
    {"name": "E5_Batched/rows16", "iters": 1000, "metrics": {"ns/op": 1850, "ns/sample": 200, "allocs/op": 0}},
    {"name": "E5_Training", "iters": 1000, "metrics": {"ns/op": 4100, "allocs/op": 2}},
    {"name": "E8_TraceSpan", "iters": 1000, "metrics": {"ns/op": 40, "allocs/op": 0}}
  ]
}`

func writeSnapshots(t *testing.T) (dir, oldPath, newPath string) {
	t.Helper()
	dir = t.TempDir()
	oldPath = filepath.Join(dir, "BENCH_PR4.json")
	newPath = filepath.Join(dir, "BENCH_PR5.json")
	if err := os.WriteFile(oldPath, []byte(baseSnapshot), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newPath, []byte(headSnapshot), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir, oldPath, newPath
}

func runDiff(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errBuf strings.Builder
	code = run(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func TestRegressionFailsNonZero(t *testing.T) {
	_, oldPath, newPath := writeSnapshots(t)
	code, stdout, stderr := runDiff(t, oldPath, newPath)
	if code != 1 {
		t.Fatalf("exit code %d on regressed snapshot, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	for _, want := range []string{
		"FAIL E5_Inference",
		"ns/sample",
		"from zero",
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("report does not mention %q:\n%s", want, stdout)
		}
	}
	// The 2.8% ns/op drift of E5_Batched and the brand-new E8 benchmark
	// must not fail.
	if strings.Contains(stdout, "FAIL E5_Batched/rows16                        ns/op") {
		t.Errorf("sub-threshold ns/op drift reported as failure:\n%s", stdout)
	}
	if !strings.Contains(stdout, "new  E8_TraceSpan") {
		t.Errorf("benchmark with no base entry not noted:\n%s", stdout)
	}
}

func TestAllowlistSuppresses(t *testing.T) {
	_, oldPath, newPath := writeSnapshots(t)
	code, stdout, _ := runDiff(t,
		"-allow", "E5_Inference,E5_Batched/rows16:ns/sample,E5_Training:allocs/op",
		oldPath, newPath)
	if code != 0 {
		t.Fatalf("exit code %d with full allowlist, want 0\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "allowlisted regression") {
		t.Errorf("report does not mark allowlisted regressions:\n%s", stdout)
	}
}

func TestAllowlistIsMetricScoped(t *testing.T) {
	_, oldPath, newPath := writeSnapshots(t)
	// ns/op scope does not cover the ns/sample regression.
	code, stdout, _ := runDiff(t,
		"-allow", "E5_Inference,E5_Batched/rows16:ns/op,E5_Training:allocs/op",
		oldPath, newPath)
	if code != 1 {
		t.Fatalf("exit code %d, want 1: name:metric entry must not cover other metrics\n%s", code, stdout)
	}
}

func TestUnusedAllowEntryIsNoted(t *testing.T) {
	_, oldPath, newPath := writeSnapshots(t)
	code, stdout, _ := runDiff(t,
		"-allow", "E5_Inference,E5_Batched/rows16,E5_Training,E5_Gone",
		oldPath, newPath)
	if code != 0 {
		t.Fatalf("exit code %d, want 0 (unused entries warn, not fail)\n%s", code, stdout)
	}
	if !strings.Contains(stdout, `allowlist entry "E5_Gone" matched no regression`) {
		t.Errorf("unused allowlist entry not noted:\n%s", stdout)
	}
}

func TestThresholdFlag(t *testing.T) {
	_, oldPath, newPath := writeSnapshots(t)
	// At 100% nothing but the zero-floor allocs growth regresses.
	code, stdout, _ := runDiff(t, "-threshold", "100", oldPath, newPath)
	if code != 1 {
		t.Fatalf("exit code %d, want 1: growth from zero must fail at any threshold\n%s", code, stdout)
	}
	code, _, _ = runDiff(t, "-threshold", "100", "-allow", "E5_Training:allocs/op", oldPath, newPath)
	if code != 0 {
		t.Fatalf("exit code %d, want 0 at 100%% threshold with allocs allowlisted", code)
	}
}

func TestDirModePicksNewestPair(t *testing.T) {
	dir, _, _ := writeSnapshots(t)
	// A stale, dramatically slower PR2 snapshot must be ignored: the
	// pair compared is PR4 -> PR5.
	pr2 := strings.Replace(baseSnapshot, `"pr": 4`, `"pr": 2`, 1)
	pr2 = strings.Replace(pr2, `"ns/op": 700`, `"ns/op": 9000`, 1)
	if err := os.WriteFile(filepath.Join(dir, "BENCH_PR2.json"), []byte(pr2), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, _ := runDiff(t, "-dir", dir)
	if code != 1 {
		t.Fatalf("exit code %d in dir mode, want 1\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "base BENCH_PR4.json (pr 4) -> head BENCH_PR5.json (pr 5)") {
		t.Errorf("dir mode did not pick the newest pair:\n%s", stdout)
	}
}

func TestImprovementIsClean(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	if err := os.WriteFile(oldPath, []byte(headSnapshot), 0o644); err != nil {
		t.Fatal(err)
	}
	improved := strings.Replace(headSnapshot, `"allocs/op": 2`, `"allocs/op": 0`, 1)
	improved = strings.Replace(improved, `"ns/op": 980`, `"ns/op": 600`, 1)
	if err := os.WriteFile(newPath, []byte(improved), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, _ := runDiff(t, oldPath, newPath)
	if code != 0 {
		t.Fatalf("exit code %d on improved snapshot, want 0\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "no unallowed regressions") {
		t.Errorf("clean run does not say so:\n%s", stdout)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runDiff(t); code != 2 {
		t.Errorf("no arguments: exit %d, want 2", code)
	}
	if code, _, _ := runDiff(t, "only-one.json"); code != 2 {
		t.Errorf("one positional: exit %d, want 2", code)
	}
	if code, _, _ := runDiff(t, "-dir", t.TempDir()); code != 2 {
		t.Errorf("empty dir: exit %d, want 2", code)
	}
}
