// Command kml-benchdiff compares two benchmark snapshots (the JSON
// documents bench_json.sh writes, BENCH_PR4.json and friends) and fails
// when a tracked metric regresses beyond a threshold. It is the
// performance analogue of the kml-vet baseline: the committed snapshots
// ratchet the hot-path numbers, and an intentional regression has to be
// spelled out on the allowlist instead of slipping in silently.
//
// Usage:
//
//	kml-benchdiff [-threshold pct] [-allow list] old.json new.json
//	kml-benchdiff [-threshold pct] [-allow list] -dir directory
//
// With -dir, the two snapshots with the highest numeric suffixes
// (BENCH_PR4.json < BENCH_PR5.json) are compared, oldest as the base.
// Tracked metrics are ns/op, ns/sample, and allocs/op. A regression is
// a metric growing by more than threshold percent — or any growth from
// zero, which matters for allocs/op where the floor is exact. The
// allowlist is comma-separated entries of the form "name" (every metric
// of that benchmark) or "name:metric". Benchmarks present on only one
// side are noted but never fail: suites grow and shrink on purpose.
//
// Exit status is 0 when clean (or every regression is allowlisted), 1
// on unallowed regressions, 2 on usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// ratchetMetrics are the metric keys the ratchet tracks, in report
// order. B/op is deliberately absent: allocs/op already pins the
// allocation count, and byte sizes legitimately drift with struct
// layout.
var ratchetMetrics = []string{"ns/op", "ns/sample", "allocs/op"}

type snapshot struct {
	PR         int         `json:"pr"`
	Benchmarks []benchmark `json:"benchmarks"`
}

type benchmark struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iters"`
	Metrics map[string]float64 `json:"metrics"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("kml-benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	threshold := fs.Float64("threshold", 15, "regression threshold in `percent`")
	allowFlag := fs.String("allow", "", "comma-separated `allowlist` of accepted regressions (name or name:metric)")
	dir := fs.String("dir", "", "compare the two newest BENCH_*<n>.json snapshots in `directory`")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: kml-benchdiff [-threshold pct] [-allow list] (old.json new.json | -dir directory)\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	var oldPath, newPath string
	switch {
	case *dir != "" && fs.NArg() == 0:
		var err error
		oldPath, newPath, err = newestPair(*dir)
		if err != nil {
			fmt.Fprintln(stderr, "kml-benchdiff:", err)
			return 2
		}
	case *dir == "" && fs.NArg() == 2:
		oldPath, newPath = fs.Arg(0), fs.Arg(1)
	default:
		fs.Usage()
		return 2
	}

	oldSnap, err := loadSnapshot(oldPath)
	if err != nil {
		fmt.Fprintln(stderr, "kml-benchdiff:", err)
		return 2
	}
	newSnap, err := loadSnapshot(newPath)
	if err != nil {
		fmt.Fprintln(stderr, "kml-benchdiff:", err)
		return 2
	}
	allow, err := parseAllow(*allowFlag)
	if err != nil {
		fmt.Fprintln(stderr, "kml-benchdiff:", err)
		return 2
	}

	fmt.Fprintf(stdout, "base %s (pr %d) -> head %s (pr %d), threshold %g%%\n",
		filepath.Base(oldPath), oldSnap.PR, filepath.Base(newPath), newSnap.PR, *threshold)

	oldByName := indexByName(oldSnap.Benchmarks)
	failures := 0
	for _, nb := range newSnap.Benchmarks {
		ob, ok := oldByName[nb.Name]
		if !ok {
			fmt.Fprintf(stdout, "  new  %-40s (no base entry)\n", nb.Name)
			continue
		}
		delete(oldByName, nb.Name)
		for _, metric := range ratchetMetrics {
			newVal, ok := nb.Metrics[metric]
			if !ok {
				continue
			}
			oldVal, ok := ob.Metrics[metric]
			if !ok {
				continue
			}
			regressed := exceeds(oldVal, newVal, *threshold)
			if !regressed {
				continue
			}
			if allow.covers(nb.Name, metric) {
				fmt.Fprintf(stdout, "  ok   %-40s %-10s %s (allowlisted regression)\n",
					nb.Name, metric, deltaString(oldVal, newVal))
				continue
			}
			failures++
			fmt.Fprintf(stdout, "  FAIL %-40s %-10s %s exceeds %g%% threshold\n",
				nb.Name, metric, deltaString(oldVal, newVal), *threshold)
		}
	}
	for _, name := range sortedKeys(oldByName) {
		fmt.Fprintf(stdout, "  gone %-40s (no head entry)\n", name)
	}
	for _, entry := range allow.unused() {
		fmt.Fprintf(stdout, "  note allowlist entry %q matched no regression (remove it)\n", entry)
	}

	if failures > 0 {
		fmt.Fprintf(stderr, "kml-benchdiff: %d metric regression(s) beyond %g%% — allowlist intentional changes with -allow\n",
			failures, *threshold)
		return 1
	}
	fmt.Fprintln(stdout, "no unallowed regressions")
	return 0
}

// exceeds reports whether newVal regressed past the threshold relative
// to oldVal. Growth from an exact zero is always a regression: the only
// base that makes "allocs/op: 0" meaningful is zero itself.
func exceeds(oldVal, newVal, thresholdPct float64) bool {
	if newVal <= oldVal {
		return false
	}
	if oldVal == 0 {
		return true
	}
	return (newVal-oldVal)/oldVal*100 > thresholdPct
}

func deltaString(oldVal, newVal float64) string {
	if oldVal == 0 {
		return fmt.Sprintf("%g -> %g (from zero)", oldVal, newVal)
	}
	return fmt.Sprintf("%g -> %g (%+.1f%%)", oldVal, newVal, (newVal-oldVal)/oldVal*100)
}

func loadSnapshot(path string) (*snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if len(s.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks in snapshot", path)
	}
	return &s, nil
}

func indexByName(benchmarks []benchmark) map[string]benchmark {
	out := make(map[string]benchmark, len(benchmarks))
	for _, b := range benchmarks {
		out[b.Name] = b
	}
	return out
}

func sortedKeys(m map[string]benchmark) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// snapshotRE extracts the numeric suffix of a snapshot filename:
// BENCH_PR5.json -> 5.
var snapshotRE = regexp.MustCompile(`^BENCH_\D*(\d+)\.json$`)

// newestPair returns the two snapshots in dir with the highest numeric
// suffixes, oldest first.
func newestPair(dir string) (oldPath, newPath string, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", "", err
	}
	type numbered struct {
		n    int
		path string
	}
	var found []numbered
	for _, e := range entries {
		m := snapshotRE.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err != nil {
			continue
		}
		found = append(found, numbered{n: n, path: filepath.Join(dir, e.Name())})
	}
	if len(found) < 2 {
		return "", "", fmt.Errorf("%s: need at least two BENCH_*<n>.json snapshots, found %d", dir, len(found))
	}
	sort.Slice(found, func(i, j int) bool { return found[i].n < found[j].n })
	return found[len(found)-2].path, found[len(found)-1].path, nil
}

// allowlist is the set of accepted regressions: bare benchmark names
// cover every metric, name:metric entries a single one. Matched entries
// are tracked so leftovers can be reported for removal.
type allowlist struct {
	entries map[string]bool
	used    map[string]bool
	order   []string
}

func parseAllow(s string) (*allowlist, error) {
	a := &allowlist{entries: make(map[string]bool), used: make(map[string]bool)}
	if s == "" {
		return a, nil
	}
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			return nil, fmt.Errorf("empty entry in -allow list")
		}
		if !a.entries[entry] {
			a.order = append(a.order, entry)
		}
		a.entries[entry] = true
	}
	return a, nil
}

func (a *allowlist) covers(name, metric string) bool {
	for _, key := range []string{name + ":" + metric, name} {
		if a.entries[key] {
			a.used[key] = true
			return true
		}
	}
	return false
}

func (a *allowlist) unused() []string {
	var out []string
	for _, entry := range a.order {
		if !a.used[entry] {
			out = append(out, entry)
		}
	}
	return out
}
