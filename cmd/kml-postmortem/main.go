// Command kml-postmortem is the crash-forensics tool for the black-box
// flight recorder: it opens a recorder file (typically salvaged from a
// dead or killed kml-served), validates every record's CRCs, reassembles
// the timeline across ring wraps and a torn tail, and renders the
// forensic report an operator wants after a crash — final throughput and
// latency, coalescing behaviour, the drift trajectory, the learner's
// last transitions, and the slowest/last decision traces the server
// captured before it died.
//
// Typical use:
//
//	kml-postmortem kml.blackbox                   # full report from a file
//	kml-postmortem -last 30s kml.blackbox         # only the final 30 seconds
//	kml-postmortem -traces 3 kml.blackbox         # fewer trace trees
//	kml-postmortem -addr /run/kml.sock            # live server: sync + read its box
//	kml-postmortem -raw kml.blackbox > series.bin # merged series for kml-top -from
//
// Live mode asks the server to capture and fsync its box first
// (MsgBlackbox sync), then reads the file the server names — the same
// bytes a post-crash scan would see.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/blackbox"
	"repro/internal/dtrace"
	"repro/internal/mserve"
	"repro/internal/telemetry/tsrec"
)

func main() {
	var (
		network = flag.String("network", "unix", "server network for live mode: unix or tcp")
		addr    = flag.String("addr", "", "live server address: sync its black box and read the file it names")
		last    = flag.Duration("last", 0, "only report records from the final window of this length (0 = all)")
		ntraces = flag.Int("traces", 5, "decision-trace trees to render per section (slowest, last)")
		raw     = flag.Bool("raw", false, "emit the merged time series in tsrec wire encoding on stdout (for kml-top -from) and exit")
	)
	flag.Parse()

	path := flag.Arg(0)
	if *addr != "" {
		cl, err := mserve.Dial(*network, *addr)
		if err != nil {
			fatal(err)
		}
		st, err := cl.Blackbox(true)
		cl.Close()
		if err != nil {
			fatal(err)
		}
		if !st.Enabled {
			fatal(fmt.Errorf("server at %s has no black box enabled", *addr))
		}
		path = st.Path
	}
	if path == "" {
		fatal(fmt.Errorf("usage: kml-postmortem [flags] <blackbox-file>  (or -addr for a live server)"))
	}

	res, err := blackbox.ScanFile(path)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	recs := res.Records
	if *last > 0 && len(recs) > 0 {
		var newest int64
		for i := range recs {
			if recs[i].TimeNanos > newest {
				newest = recs[i].TimeNanos
			}
		}
		cutoff := newest - int64(*last)
		kept := recs[:0]
		for i := range recs {
			if recs[i].TimeNanos >= cutoff {
				kept = append(kept, recs[i])
			}
		}
		recs = kept
	}

	if *raw {
		ts, skipped := blackbox.MergeTimeSeries(recs)
		if res.Torn > 0 || skipped > 0 {
			fmt.Fprintf(os.Stderr, "kml-postmortem: %d torn records, %d unparsable series records skipped\n",
				res.Torn, skipped)
		}
		if _, err := os.Stdout.Write(tsrec.AppendSeries(nil, ts)); err != nil {
			fatal(err)
		}
		return
	}

	printHeader(path, res, recs)
	printSeries(recs)
	metrics := lastMetrics(recs)
	printCoalesce(metrics)
	printDrift(recs, metrics)
	printLearn(recs)
	printTraces(recs, *ntraces)
}

// printHeader summarizes the scan: geometry, record census by kind, torn
// count, and the reconstructed timeline range.
func printHeader(path string, res blackbox.ScanResult, recs []blackbox.Record) {
	counts := map[blackbox.Kind]int{}
	var lo, hi int64
	for i := range recs {
		counts[recs[i].Kind]++
		t := recs[i].TimeNanos
		if lo == 0 || t < lo {
			lo = t
		}
		if t > hi {
			hi = t
		}
	}
	fmt.Printf("black box %s  ring %d bytes  created %s\n",
		path, res.RingBytes, time.Unix(0, res.CreatedNanos).UTC().Format("2006-01-02 15:04:05"))
	fmt.Printf("records   %d intact (%d metrics, %d timeseries, %d traces, %d learn), %d torn\n",
		len(recs), counts[blackbox.KindMetrics], counts[blackbox.KindTimeSeries],
		counts[blackbox.KindTraces], counts[blackbox.KindLearn], res.Torn)
	if len(recs) > 0 {
		fmt.Printf("timeline  %s … %s  (%s)\n",
			time.Unix(0, lo).UTC().Format("15:04:05.000"),
			time.Unix(0, hi).UTC().Format("15:04:05.000"),
			time.Duration(hi-lo).Round(time.Millisecond))
	}
	fmt.Println()
}

// printSeries merges every time-series record and renders the final
// throughput and latency picture — rows/s from counter deltas, infer and
// queue-delay quantiles from the last captured point, p99 sparklines
// over the recovered window.
func printSeries(recs []blackbox.Record) {
	ts, skipped := blackbox.MergeTimeSeries(recs)
	if skipped > 0 {
		fmt.Fprintf(os.Stderr, "kml-postmortem: %d unparsable series records skipped\n", skipped)
	}
	if len(ts.Points) == 0 {
		fmt.Println("series    no time-series points recovered")
		fmt.Println()
		return
	}
	rowsCol := tsColumn(ts.Counters, "mserve_rows")
	if rowsCol >= 0 && ts.IntervalNanos > 0 {
		rates := make([]uint64, len(ts.Points))
		for i := range ts.Points {
			rates[i] = ts.Points[i].Deltas[rowsCol] * 1_000_000_000 / uint64(ts.IntervalNanos)
		}
		fmt.Printf("throughput %8d rows/s at death  %s\n", rates[len(rates)-1], spark(rates))
	}
	for _, h := range []struct{ col, label string }{
		{"mserve_infer_ns", "infer"},
		{"mserve_queue_delay_ns", "queue"},
	} {
		hc := tsColumn(ts.Hists, h.col)
		if hc < 0 {
			continue
		}
		lastPt := &ts.Points[len(ts.Points)-1]
		p99s := make([]uint64, len(ts.Points))
		for i := range ts.Points {
			p99s[i] = uint64(ts.Points[i].P99[hc])
		}
		fmt.Printf("%-7s p50 %8s  p95 %8s  p99 %8s  %s\n",
			h.label, fmtNS(lastPt.P50[hc]), fmtNS(lastPt.P95[hc]), fmtNS(lastPt.P99[hc]), spark(p99s))
	}
	fmt.Printf("series    %d points @ %s\n\n", len(ts.Points), time.Duration(ts.IntervalNanos))
}

// lastMetrics decodes the newest intact metrics record, nil if none.
func lastMetrics(recs []blackbox.Record) *mserve.MetricsSnapshot {
	for i := len(recs) - 1; i >= 0; i-- {
		if recs[i].Kind != blackbox.KindMetrics {
			continue
		}
		snap, err := mserve.ParseMetrics(recs[i].Payload)
		if err != nil {
			continue
		}
		return &snap
	}
	return nil
}

// printCoalesce renders the cross-connection batching picture from the
// final metrics snapshot: totals plus the fused-batch size quantiles.
func printCoalesce(snap *mserve.MetricsSnapshot) {
	if snap == nil {
		return
	}
	var batches, rows int64
	var hist *mserve.Metric
	for i := range snap.Metrics {
		m := &snap.Metrics[i]
		switch m.Name {
		case "mserve_coalesce_batches":
			batches = m.Value
		case "mserve_coalesce_rows":
			rows = m.Value
		case "mserve_coalesce_batch":
			hist = m
		}
	}
	if batches == 0 && rows == 0 {
		return
	}
	line := fmt.Sprintf("coalesce  %d fused batches, %d rows", batches, rows)
	if hist != nil && hist.Hist.Count > 0 {
		line += fmt.Sprintf("  batch p50=%d p95=%d p99=%d",
			hist.Hist.Quantile(0.50), hist.Hist.Quantile(0.95), hist.Hist.Quantile(0.99))
	}
	fmt.Println(line + "\n")
}

// printDrift walks every intact metrics record in capture order and
// renders each drift monitor's max-shift trajectory — the milli-z value
// per capture, sparklined, with the final window's verdict.
func printDrift(recs []blackbox.Record, last *mserve.MetricsSnapshot) {
	type point struct{ shift, churn, windows, drifted int64 }
	traj := map[string][]point{}
	for i := range recs {
		if recs[i].Kind != blackbox.KindMetrics {
			continue
		}
		snap, err := mserve.ParseMetrics(recs[i].Payload)
		if err != nil {
			continue
		}
		byName := make(map[string]int64, len(snap.Metrics))
		for _, m := range snap.Metrics {
			if m.Kind != mserve.MetricHistogram {
				byName[m.Name] = m.Value
			}
		}
		for _, prefix := range []string{"mserve_drift", "readahead_drift"} {
			if _, ok := byName[prefix+"_windows"]; !ok {
				continue
			}
			traj[prefix] = append(traj[prefix], point{
				shift:   byName[prefix+"_max_shift_mz"],
				churn:   byName[prefix+"_churn_pm"],
				windows: byName[prefix+"_windows"],
				drifted: byName[prefix+"_drifted"],
			})
		}
	}
	prefixes := make([]string, 0, len(traj))
	for p := range traj {
		prefixes = append(prefixes, p)
	}
	sort.Strings(prefixes)
	for _, prefix := range prefixes {
		pts := traj[prefix]
		shifts := make([]uint64, len(pts))
		for i, p := range pts {
			if p.shift > 0 {
				shifts[i] = uint64(p.shift)
			}
		}
		end := pts[len(pts)-1]
		state := "ok"
		if end.drifted != 0 {
			state = "DRIFTED"
		}
		fmt.Printf("drift     %-15s %-8s shift %+5dmz  churn %4dpm  windows %d  %s\n",
			prefix, state, end.shift, end.churn, end.windows, spark(shifts))
	}
	if len(prefixes) > 0 {
		fmt.Println()
	}
}

// printLearn renders the learner's recorded state transitions in capture
// order (the sampler persists a learn record only when the controller
// moved) and the retrain history from the final transition.
func printLearn(recs []blackbox.Record) {
	var states []blackbox.Record
	for i := range recs {
		if recs[i].Kind == blackbox.KindLearn {
			states = append(states, recs[i])
		}
	}
	if len(states) == 0 {
		return
	}
	var lastSt mserve.LearnStatus
	for _, r := range states {
		st, err := mserve.ParseLearnStatus(r.Payload)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kml-postmortem: learn record seq %d unparsable\n", r.Seq)
			continue
		}
		fmt.Printf("learn     %s state=%s v%d retrains=%d deploys=%d commits=%d rollbacks=%d fires=%d baseline=%dpm canary=%dpm\n",
			time.Unix(0, r.TimeNanos).UTC().Format("15:04:05.000"),
			mserve.LearnStateName(st.State), st.LastVersion, st.Retrains, st.Deploys,
			st.Commits, st.Rollbacks, st.TriggerFires, st.BaselinePM, st.CanaryPM)
		lastSt = st
	}
	for _, e := range lastSt.Events {
		fmt.Printf("retrain   v%-3d %s  %s  examples=%d train=%s baseline=%dpm canary=%dpm shift=%+dmz churn=%dpm\n",
			e.Version, time.Unix(0, int64(e.TimeNanos)).UTC().Format("15:04:05.000"),
			mserve.RetrainOutcomeName(e.Outcome), e.Examples,
			time.Duration(e.DurationNanos).Round(time.Millisecond),
			e.BaselinePM, e.CanaryPM, e.MaxShiftMZ, e.ChurnPM)
	}
	fmt.Println()
}

// printTraces reassembles every intact trace record, dedupes by TraceID
// (the newest capture of a trace wins), and renders the slowest n and
// the last n decisions as span trees.
func printTraces(recs []blackbox.Record, n int) {
	byID := map[dtrace.TraceID]dtrace.Trace{}
	var order []dtrace.TraceID // insertion order of first sighting
	for i := range recs {
		if recs[i].Kind != blackbox.KindTraces {
			continue
		}
		traces, err := dtrace.ParseTraces(recs[i].Payload)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kml-postmortem: trace record seq %d unparsable\n", recs[i].Seq)
			continue
		}
		for _, tr := range traces {
			if _, seen := byID[tr.ID]; !seen {
				order = append(order, tr.ID)
			}
			byID[tr.ID] = tr
		}
	}
	if len(order) == 0 {
		fmt.Println("traces    none recovered")
		return
	}
	if n <= 0 {
		n = 1
	}
	slowest := append([]dtrace.TraceID(nil), order...)
	sort.Slice(slowest, func(i, j int) bool {
		a, b := byID[slowest[i]], byID[slowest[j]]
		return a.Root().Duration() > b.Root().Duration()
	})
	fmt.Printf("slowest decisions (%d of %d recovered):\n", min(n, len(order)), len(order))
	for i := 0; i < len(slowest) && i < n; i++ {
		tr := byID[slowest[i]]
		printTrace(&tr)
	}
	fmt.Printf("last decisions before death:\n")
	start := len(order) - n
	if start < 0 {
		start = 0
	}
	for _, id := range order[start:] {
		tr := byID[id]
		printTrace(&tr)
	}
	fmt.Printf("%d traces recovered\n", len(order))
}

// printTrace renders one trace as a span tree (the kml-trace rendering:
// children of span i carry Parent == i+1).
func printTrace(tr *dtrace.Trace) {
	root := tr.Root()
	fmt.Printf("trace %d  %s  %s  value=%d aux=%d\n",
		tr.ID, time.Unix(0, root.Start).UTC().Format("15:04:05.000000"),
		fmtDur(root.Duration()), root.Value, root.Aux)
	printChildren(tr, 1, "  ")
}

func printChildren(tr *dtrace.Trace, parent uint8, indent string) {
	spans := tr.Used()
	last := -1
	for i := range spans {
		if i > 0 && spans[i].Parent == parent {
			last = i
		}
	}
	for i := range spans {
		if i == 0 || spans[i].Parent != parent {
			continue
		}
		conn := "├─"
		if i == last {
			conn = "└─"
		}
		fmt.Printf("%s%s %-10s %8s  value=%d aux=%d\n",
			indent, conn, spans[i].Stage, fmtDur(spans[i].Duration()), spans[i].Value, spans[i].Aux)
		printChildren(tr, uint8(i+1), indent+"   ")
	}
}

// tsColumn finds a named series column, -1 if absent.
func tsColumn(names []string, want string) int {
	for i, n := range names {
		if n == want {
			return i
		}
	}
	return -1
}

// sparkRunes is the 8-level block ramp shared with kml-top; scaling is
// pure integer math.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

func spark(vals []uint64) string {
	const width = 32
	if len(vals) > width {
		vals = vals[len(vals)-width:]
	}
	var max uint64
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	var sb strings.Builder
	for _, v := range vals {
		idx := 0
		if max > 0 {
			idx = int(v * uint64(len(sparkRunes)-1) / max)
		}
		sb.WriteRune(sparkRunes[idx])
	}
	return sb.String()
}

// fmtNS renders a nanosecond quantile compactly.
func fmtNS(ns int64) string {
	switch {
	case ns >= 10_000_000:
		return fmt.Sprintf("%dms", ns/1_000_000)
	case ns >= 10_000:
		return fmt.Sprintf("%dµs", ns/1_000)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

func fmtDur(ns int64) string {
	if ns < 0 {
		return "?"
	}
	return time.Duration(ns).String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
