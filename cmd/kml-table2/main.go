// Command kml-table2 reproduces Table 2 of the paper: the throughput of
// six db_bench workloads with the KML readahead tuner in the loop, relative
// to the vanilla Linux-default baseline, on the NVMe and SATA-SSD device
// models. The classifier is trained only on the four training workloads on
// NVMe (as in the paper), then deployed unchanged on both devices and on
// the two never-seen workloads (updaterandom, mixgraph).
//
// With -model dtree it runs the decision-tree variant the paper summarizes
// ("improved performance for SSD 55% and NVMe 26% on average").
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/readahead"
)

func main() {
	quick := flag.Bool("quick", false, "8x smaller environment for a fast pass")
	trainSeconds := flag.Int("train-seconds", 20, "virtual seconds per training run")
	seconds := flag.Int("seconds", 10, "virtual seconds per measured run")
	model := flag.String("model", "nn", "model family: nn, dtree, or both")
	seed := flag.Int64("seed", 1, "seed")
	par := flag.Int("parallel", 0, "worker goroutines for table cells (0 = GOMAXPROCS, 1 = serial); output is identical for any value")
	flag.Parse()

	nvmeCfg := bench.DefaultNVMeConfig(*seed)
	ssdCfg := bench.DefaultSSDConfig(*seed)
	if *quick {
		nvmeCfg = bench.QuickConfig(nvmeCfg)
		ssdCfg = bench.QuickConfig(ssdCfg)
	}

	fmt.Println("training classifier on NVMe (4 workloads x 4 readahead values)...")
	nnBundle, raw, labels, err := bench.TrainNNBundle(nvmeCfg,
		readahead.DatasetConfig{SecondsPerRun: *trainSeconds},
		readahead.TrainConfig{Seed: *seed})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("dataset: %d windows\n\n", len(raw))

	run := func(b bench.Bundle) {
		res, err := bench.RunTable2Parallel(nvmeCfg, ssdCfg, *seconds, b, *par)
		if err != nil {
			fatal(err)
		}
		res.Write(os.Stdout)
		fmt.Println()
	}
	switch *model {
	case "nn":
		run(nnBundle)
	case "dtree":
		tb, err := bench.TrainTreeBundle(raw, labels)
		if err != nil {
			fatal(err)
		}
		run(tb)
	case "both":
		run(nnBundle)
		tb, err := bench.TrainTreeBundle(raw, labels)
		if err != nil {
			fatal(err)
		}
		run(tb)
	default:
		fatal(fmt.Errorf("unknown model %q", *model))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
